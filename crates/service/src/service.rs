//! The concurrent query engine: bounded submission queue, fixed worker
//! pool with persistent diffusion workspaces, the cache fast path, and
//! single-flight coalescing of concurrent misses.

use crate::cache::{InFlightTable, ShardedCache, Submission};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use crate::ClusterIndex;
use laca_core::laca::LacaQueryStats;
use laca_core::CoreError;
use laca_diffusion::{SparseVec, WorkspacePool};
use laca_graph::NodeId;
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for a [`QueryService`]. `Default` is a reasonable
/// embedded setup: one worker per hardware thread, a 1 024-deep queue,
/// and a per-worker result-cache budget of 512 answers.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1). Each holds a persistent
    /// [`laca_diffusion::DiffusionWorkspace`] checked out of the service's
    /// pool for its whole lifetime, so steady-state queries allocate
    /// nothing inside the push loops.
    pub workers: usize,
    /// Bound of the submission queue (≥ 1). When full, `submit` blocks —
    /// backpressure, not unbounded memory growth.
    pub queue_capacity: usize,
    /// Result-cache budget *per worker*, in answers; the total cache
    /// capacity is `workers × cache_per_worker`, mirroring sharded serving
    /// systems where every worker brings its own memory budget (so
    /// provisioning more workers also grows the aggregate cache). `0`
    /// disables caching entirely.
    pub cache_per_worker: usize,
    /// Lock shards of the result cache (≥ 1; more shards, less contention).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_capacity: 1024,
            cache_per_worker: 512,
            cache_shards: 8,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the submission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the per-worker cache budget (`0` disables the cache).
    pub fn with_cache_per_worker(mut self, entries: usize) -> Self {
        self.cache_per_worker = entries;
        self
    }

    /// Sets the cache shard count.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }
}

/// Errors surfaced by the service API.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The service was shut down before (or while) the query ran.
    Closed,
    /// The underlying LACA query failed (bad seed, solver error, ...).
    Core(CoreError),
    /// The query panicked on its worker; the worker survived and keeps
    /// serving (the panic payload went to the worker's stderr).
    QueryPanicked,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Closed => write!(f, "query service is shut down"),
            ServiceError::Core(e) => write!(f, "query failed: {e}"),
            ServiceError::QueryPanicked => write!(f, "query panicked on its worker"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

/// One answered seed query. Shared via `Arc`: cache hits hand out the
/// same allocation the original computation produced.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The queried seed.
    pub seed: NodeId,
    /// The approximate BDD vector `ρ'` — exactly what serial
    /// [`laca_core::Laca::bdd_with_stats`] returns for this seed.
    pub rho: SparseVec,
    /// Query telemetry (push counts etc.), identical to the serial path's.
    pub stats: LacaQueryStats,
}

/// What a query ultimately yields: the (possibly cached) answer, or the
/// error that ended it.
pub type QueryResult = Result<Arc<QueryAnswer>, ServiceError>;

/// The result-cache / in-flight key: `(seed, index-fingerprint)`.
type CacheKey = (NodeId, u64);

/// A pending (or already-answered) query returned by
/// [`QueryService::submit`].
#[derive(Debug)]
pub struct QueryHandle {
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    /// Answered at submit time (cache hit, or rejected before enqueue).
    Ready(QueryResult),
    /// In flight; the worker sends exactly one result.
    Pending(mpsc::Receiver<QueryResult>),
}

impl QueryHandle {
    /// Blocks until the answer is available.
    pub fn wait(self) -> QueryResult {
        match self.inner {
            HandleInner::Ready(result) => result,
            // A dropped sender means the service shut down mid-flight.
            HandleInner::Pending(rx) => rx.recv().unwrap_or(Err(ServiceError::Closed)),
        }
    }
}

/// Where a computed answer goes.
enum Reply {
    /// Straight to the submitter (cache — and with it coalescing — is
    /// disabled, so every submission has exactly one waiter).
    Direct(mpsc::Sender<QueryResult>),
    /// Through the in-flight table: the leader and every coalesced
    /// follower are parked as waiters on the job's key.
    Flight,
}

/// One queued unit of work.
struct Job {
    seed: NodeId,
    reply: Reply,
    enqueued: Instant,
}

/// The bounded MPMC submission queue (mutex + two condvars; jobs are
/// milliseconds of work, so queue-lock contention is noise).
///
/// Generic over the item so the model-checking tests (`model_tests`)
/// can schedule-explore the push/pop/close protocol with plain payloads;
/// the service instantiates it as `JobQueue<Job>`.
///
/// Lock poisoning is recovered, not propagated: every critical section
/// is a single `VecDeque` operation or flag write, so the state a
/// panicking thread leaves behind is always consistent — and a worker
/// dying mid-`pop` must degrade (other workers and submitters keep
/// going, `close` still drains) rather than cascade the panic into
/// every thread that touches the queue.
pub(crate) struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `job`, blocking while the queue is full. Fails only after
    /// shutdown.
    pub(crate) fn push(&self, job: T) -> Result<(), ServiceError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed {
                return Err(ServiceError::Closed);
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the next job, blocking while empty. `None` once the queue
    /// is closed *and* drained — workers finish in-flight work before
    /// exiting.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn close(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Monotonic service counters (updated with relaxed atomics; the snapshot
/// is advisory telemetry, not a synchronization point).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    compute_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
}

impl Counters {
    /// Zeroes every counter ([`QueryService::reset_stats`]). Resets racing
    /// in-flight updates lose those increments — acceptable for the
    /// advisory telemetry these are; quiesce the service first when exact
    /// windows matter.
    fn reset(&self) {
        for c in [
            &self.hits,
            &self.misses,
            &self.coalesced,
            &self.completed,
            &self.errors,
            &self.compute_ns,
            &self.queue_wait_ns,
        ] {
            // ordering: Relaxed store is deliberate — each counter is
            // independent advisory telemetry; a reset needs no ordering
            // against concurrent bumps (racing increments may be lost,
            // as documented on `reset_stats`).
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time snapshot of a service's counters
/// ([`QueryService::stats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Total result-cache capacity in answers (0 = caching disabled).
    pub cache_capacity: usize,
    /// Answers currently cached.
    pub cache_entries: usize,
    /// Queries answered from the cache at submit time.
    pub cache_hits: u64,
    /// Queries that missed the cache and were enqueued (flight leaders
    /// when coalescing is active).
    pub cache_misses: u64,
    /// Queries that missed the cache but joined an in-flight computation
    /// of the same key instead of enqueueing a second compute
    /// (single-flight coalescing; zero when the cache is disabled).
    pub coalesced: u64,
    /// Queries computed to completion by workers (success or error).
    pub completed: u64,
    /// Queries that failed in the core algorithm.
    pub errors: u64,
    /// Total worker compute time, nanoseconds.
    pub compute_ns: u64,
    /// Total time jobs spent queued before a worker picked them up.
    pub queue_wait_ns: u64,
}

impl ServiceStats {
    /// Cache hit rate over all submissions (0 when nothing was
    /// submitted). Coalesced submissions count toward the denominator but
    /// not the numerator: they missed the cache, they just didn't pay for
    /// a second compute.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Adds every field of `other` into `self` — counters and gauges
    /// alike (summed gauges describe the aggregate fleet). This is the
    /// one place the full field list is enumerated for aggregation;
    /// [`crate::ServiceRouter::aggregate_stats`] folds per-route
    /// snapshots through it.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.workers += other.workers;
        self.cache_capacity += other.cache_capacity;
        self.cache_entries += other.cache_entries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.coalesced += other.coalesced;
        self.completed += other.completed;
        self.errors += other.errors;
        self.compute_ns += other.compute_ns;
        self.queue_wait_ns += other.queue_wait_ns;
    }

    /// The counter deltas accrued since `earlier` (an older snapshot of
    /// the *same* service): monotonic counters subtract, gauges
    /// (`workers`, `cache_capacity`, `cache_entries`) keep `self`'s
    /// values. This is how benches carve a warm measurement window out of
    /// counters that aggregate across workers for the service's lifetime
    /// — snapshot, run the window, snapshot again, diff.
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            workers: self.workers,
            cache_capacity: self.cache_capacity,
            cache_entries: self.cache_entries,
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            completed: self.completed.saturating_sub(earlier.completed),
            errors: self.errors.saturating_sub(earlier.errors),
            compute_ns: self.compute_ns.saturating_sub(earlier.compute_ns),
            queue_wait_ns: self.queue_wait_ns.saturating_sub(earlier.queue_wait_ns),
        }
    }

    /// Mean compute time per completed query (zero before any complete).
    pub fn avg_compute(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.compute_ns.checked_div(self.completed).unwrap_or(0))
    }

    /// Mean queue wait per completed query (zero before any complete).
    pub fn avg_queue_wait(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.queue_wait_ns.checked_div(self.completed).unwrap_or(0))
    }
}

/// State shared between the service handle and its workers. `cache` and
/// `inflight` are both `Some` or both `None`: coalescing rides on the
/// cache (followers receive "the cached answer"), so disabling the cache
/// also restores strict compute-per-submission semantics — which the
/// cold-throughput benches rely on.
struct Shared {
    index: ClusterIndex,
    queue: JobQueue<Job>,
    cache: Option<ShardedCache<CacheKey, Arc<QueryAnswer>>>,
    inflight: Option<InFlightTable<CacheKey, QueryResult>>,
    counters: Counters,
    workspaces: WorkspacePool,
}

/// An embeddable concurrent query engine over one [`ClusterIndex`].
///
/// * **Shared index** — graph + TNAM + params behind `Arc`s; worker
///   engines are pointer copies.
/// * **Worker pool** — `config.workers` threads, each holding a
///   persistent [`laca_diffusion::DiffusionWorkspace`] checked out of a
///   [`WorkspacePool`] for its lifetime (steady-state queries allocate
///   nothing in the push loops).
/// * **Bounded queue** — `submit` applies backpressure once
///   `config.queue_capacity` jobs are in flight.
/// * **Result cache** — sharded LRU keyed `(seed, index-fingerprint)`,
///   consulted on the submit path; hits never touch the queue.
///
/// Results are **bit-identical** to serial [`laca_core::Laca::bdd`]: the
/// solvers are deterministic and per-worker scratch does not affect
/// arithmetic (asserted by `tests/concurrency.rs`).
///
/// Dropping the service closes the queue, lets workers drain in-flight
/// jobs, and joins them.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts `config.workers` worker threads over `index`.
    pub fn start(index: ClusterIndex, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let cache_capacity = workers * config.cache_per_worker;
        let cache =
            (cache_capacity > 0).then(|| ShardedCache::new(cache_capacity, config.cache_shards));
        let inflight = cache.as_ref().map(|_| InFlightTable::new());
        let workspaces = WorkspacePool::for_graph(index.graph(), workers);
        let shared = Arc::new(Shared {
            index,
            queue: JobQueue::new(config.queue_capacity.max(1)),
            cache,
            inflight,
            counters: Counters::default(),
            workspaces,
        });
        let handles = (0..workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("laca-service-{wid}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn service worker")
            })
            .collect();
        QueryService { shared, workers: handles }
    }

    /// Starts a service with the default configuration.
    pub fn with_defaults(index: ClusterIndex) -> Self {
        Self::start(index, ServiceConfig::default())
    }

    /// Submits one seed query. Returns immediately on a cache hit;
    /// otherwise enqueues the query (blocking only when the queue is at
    /// capacity) and returns a handle to wait on.
    ///
    /// Misses are **single-flight** (when the cache is enabled): if an
    /// identical `(seed, params)` computation is already in flight, this
    /// submission joins it instead of enqueueing a second compute — both
    /// waiters receive the same shared answer, and the join is counted in
    /// [`ServiceStats::coalesced`].
    ///
    /// # Example
    ///
    /// ```
    /// use laca_core::tnam::TnamConfig;
    /// use laca_core::{LacaParams, MetricFn};
    /// use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
    /// use laca_service::{ClusterIndex, QueryService, ServiceConfig};
    ///
    /// let ds = AttributedGraphSpec {
    ///     n: 120, n_clusters: 3, avg_degree: 6.0, p_intra: 0.85,
    ///     missing_intra: 0.05, degree_exponent: 0.0, cluster_size_skew: 0.0,
    ///     attributes: Some(AttributeSpec::default_for(24)), seed: 3,
    /// }
    /// .generate("demo")
    /// .unwrap();
    /// let index = ClusterIndex::from_dataset(
    ///     &ds,
    ///     &TnamConfig::new(8, MetricFn::Cosine),
    ///     LacaParams::new(1e-4),
    /// )
    /// .unwrap();
    /// let service = QueryService::start(index, ServiceConfig::default().with_workers(2));
    ///
    /// // Submit returns a handle immediately…
    /// let handle = service.submit(0);
    /// // …and `wait` blocks for the worker's (bit-deterministic) answer.
    /// let answer = handle.wait().unwrap();
    /// assert!(answer.rho.support_size() > 0);
    /// ```
    pub fn submit(&self, seed: NodeId) -> QueryHandle {
        let shared = &self.shared;
        let key = (seed, shared.index.fingerprint());
        let counters = &shared.counters;
        let (cache, inflight) = match (&shared.cache, &shared.inflight) {
            (Some(cache), Some(inflight)) => {
                // Fast path: answered straight from the cache.
                if let Some(answer) = cache.get(&key) {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return QueryHandle { inner: HandleInner::Ready(Ok(answer)) };
                }
                (cache, inflight)
            }
            // Cache (and with it coalescing) disabled: every submission
            // computes, with a private reply channel.
            _ => {
                counters.misses.fetch_add(1, Ordering::Relaxed);
                let (tx, rx) = mpsc::channel();
                let job = Job { seed, reply: Reply::Direct(tx), enqueued: Instant::now() };
                return match shared.queue.push(job) {
                    Ok(()) => QueryHandle { inner: HandleInner::Pending(rx) },
                    Err(e) => QueryHandle { inner: HandleInner::Ready(Err(e)) },
                };
            }
        };
        // Miss: join the key's in-flight computation if there is one,
        // else lead a new flight. Leader and followers alike are parked
        // as waiters on the flight entry.
        let (tx, rx) = mpsc::channel();
        match inflight.join_or_lead(key, tx, || cache.get(&key).map(Ok)) {
            Submission::Joined => {
                counters.coalesced.fetch_add(1, Ordering::Relaxed);
                QueryHandle { inner: HandleInner::Pending(rx) }
            }
            Submission::Resolved(result) => {
                // The racing flight resolved between our fast-path probe
                // and the shard lock; its answer is in the cache now.
                counters.hits.fetch_add(1, Ordering::Relaxed);
                QueryHandle { inner: HandleInner::Ready(result) }
            }
            Submission::Leading => {
                counters.misses.fetch_add(1, Ordering::Relaxed);
                let job = Job { seed, reply: Reply::Flight, enqueued: Instant::now() };
                if let Err(e) = shared.queue.push(job) {
                    // The flight must resolve on every leader path;
                    // this also serves any follower that joined since.
                    inflight.resolve(&key, Err(e));
                }
                QueryHandle { inner: HandleInner::Pending(rx) }
            }
        }
    }

    /// Answers one seed query, blocking until it completes.
    pub fn query(&self, seed: NodeId) -> QueryResult {
        self.submit(seed).wait()
    }

    /// Submits a batch and waits for every answer, in input order. All
    /// queries are in flight before the first wait, so a batch pipelines
    /// across the whole worker pool.
    pub fn query_batch(&self, seeds: &[NodeId]) -> Vec<QueryResult> {
        let handles: Vec<QueryHandle> = seeds.iter().map(|&s| self.submit(s)).collect();
        handles.into_iter().map(QueryHandle::wait).collect()
    }

    /// The index this service answers over.
    pub fn index(&self) -> &ClusterIndex {
        &self.shared.index
    }

    /// A point-in-time snapshot of the hit/miss/latency counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        // ordering: Relaxed loads are deliberate — the snapshot is
        // advisory telemetry, not a synchronization point; each field is
        // independently monotonic and `ServiceStats::delta_since`
        // saturates, so cross-counter skew is benign.
        ServiceStats {
            workers: self.workers.len(),
            cache_capacity: self.shared.cache.as_ref().map_or(0, ShardedCache::capacity),
            cache_entries: self.shared.cache.as_ref().map_or(0, ShardedCache::len),
            cache_hits: c.hits.load(Ordering::Relaxed),
            cache_misses: c.misses.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            compute_ns: c.compute_ns.load(Ordering::Relaxed),
            queue_wait_ns: c.queue_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss/latency counters, so the next [`Self::stats`]
    /// snapshot covers only work submitted after this call — benches use
    /// it to measure a warm window without lifetime-aggregate noise (the
    /// gauges — cache entries/capacity, workers — are unaffected).
    /// Increments racing with the reset may be lost; quiesce the service
    /// first when exact counts matter. [`ServiceStats::delta_since`] is
    /// the non-destructive alternative.
    pub fn reset_stats(&self) {
        self.shared.counters.reset();
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked already printed its message; the
            // service is going away either way.
            let _ = handle.join();
        }
    }
}

/// Body of one worker thread: one engine (pointer copies of the index),
/// one workspace for life, then serve until the queue closes and drains.
fn worker_loop(shared: &Shared) {
    // If this worker dies by a panic that escapes the per-job containment
    // below, close the queue on the way out: submitters then fail fast
    // with `Closed` instead of enqueueing into a queue nobody drains.
    struct CloseOnPanic<'a>(&'a Shared);
    impl Drop for CloseOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.queue.close();
            }
        }
    }
    let _close_on_panic = CloseOnPanic(shared);

    /// Resolves a flight job's key with an error if processing unwinds
    /// past the per-query containment (e.g. a poisoned cache shard):
    /// without this, the coalesced waiters' senders stay parked in the
    /// in-flight table and every waiter blocks until service drop. On
    /// the normal path the worker resolves first, so this drop-time
    /// resolve is a no-op (the entry is already gone).
    struct ResolveOnUnwind<'a> {
        shared: &'a Shared,
        key: CacheKey,
        armed: bool,
    }
    impl Drop for ResolveOnUnwind<'_> {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                if let Some(inflight) = &self.shared.inflight {
                    inflight.resolve(&self.key, Err(ServiceError::QueryPanicked));
                }
            }
        }
    }

    let engine = shared.index.engine();
    let fingerprint = shared.index.fingerprint();
    let mut workspace = shared.workspaces.checkout();
    while let Some(job) = shared.queue.pop() {
        let _resolve_on_unwind = ResolveOnUnwind {
            shared,
            key: (job.seed, fingerprint),
            armed: matches!(job.reply, Reply::Flight),
        };
        let wait_ns = job.enqueued.elapsed().as_nanos() as u64;
        let started = Instant::now();
        // Contain per-query panics: one poisoned query must not take the
        // worker (and with it the whole service) down. The workspace is
        // safe to reuse afterwards — `begin` epoch-invalidates all slot
        // state and clears every list at the next query.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.bdd_with_stats_in(job.seed, &mut workspace)
        }));
        let compute_ns = started.elapsed().as_nanos() as u64;
        let counters = &shared.counters;
        counters.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        counters.compute_ns.fetch_add(compute_ns, Ordering::Relaxed);
        counters.completed.fetch_add(1, Ordering::Relaxed);
        let reply: QueryResult = match result {
            Ok(Ok((rho, stats))) => {
                let answer = Arc::new(QueryAnswer { seed: job.seed, rho, stats });
                // Cache insert MUST happen before the flight resolves
                // below: `submit`'s under-lock re-check relies on
                // "no in-flight entry → a finished flight's answer is
                // already visible in the cache".
                if let Some(cache) = &shared.cache {
                    cache.insert((job.seed, fingerprint), Arc::clone(&answer));
                }
                Ok(answer)
            }
            Ok(Err(e)) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Core(e))
            }
            Err(_panic) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::QueryPanicked)
            }
        };
        match &job.reply {
            // The submitter may have dropped its handle; that's fine.
            Reply::Direct(tx) => drop(tx.send(reply)),
            Reply::Flight => {
                let inflight =
                    shared.inflight.as_ref().expect("flight job without an in-flight table");
                inflight.resolve(&(job.seed, fingerprint), reply);
            }
        }
    }
}
