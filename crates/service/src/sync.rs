//! Synchronization facade: `std::sync` in normal builds, `loom`'s
//! instrumented primitives under `--cfg laca_model_check`.
//!
//! Every concurrency-bearing module in this crate (`service`, `cache`,
//! `snapshot`) imports its primitives from here instead of `std::sync`,
//! so the *same* production code paths — the bounded job queue's
//! mutex+condvar protocol, the in-flight table's shard locks, the
//! router's copy-on-write snapshot — can be compiled against the model
//! checker and exhaustively schedule-explored:
//!
//! ```sh
//! RUSTFLAGS="--cfg laca_model_check" cargo test -p laca-service
//! ```
//!
//! Under the cfg, the loom stand-in primitives delegate straight to
//! `std` whenever no model is active, so the crate's ordinary unit and
//! integration tests keep real `std` semantics in the same build; only
//! tests that wrap their body in `loom::model` pay for instrumentation
//! (see `model_tests.rs` for those).
//!
//! `PoisonError`/`LockResult` are `std`'s in both configurations — the
//! loom stand-in surfaces the real poison state of its inner `std`
//! primitives, so poison-recovery paths behave identically.

pub use std::sync::{LockResult, PoisonError};

#[cfg(not(laca_model_check))]
pub use std::sync::{atomic, mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock};

#[cfg(laca_model_check)]
pub use loom::sync::{atomic, mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock};
