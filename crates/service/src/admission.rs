//! Overload-admission policy and retry/backoff knobs for the serving
//! layer: what [`crate::QueryService::submit`] does when the bounded
//! submission queue is at capacity, per-submission deadline options, and
//! how [`crate::ServiceRouter::submit_with_retry`] paces bounded retries
//! of shed submissions.

use std::time::Duration;

/// How a [`crate::QueryService`] admits work when the bounded submission
/// queue is full.
///
/// | Policy | Full queue means… | Latency profile |
/// |--------|-------------------|-----------------|
/// | `Block` | the submitter parks until a slot frees (backpressure) | unbounded submit latency, zero rejections |
/// | `Shed` | every submission that is not a cache hit is rejected with [`crate::ServiceError::Overloaded`] | submit never blocks; queueing delay bounded by queue depth |
/// | `SmartShed` | only work that would *enqueue a compute* is rejected; joins onto a live flight are still admitted | like `Shed`, but sheds less under hot-key skew |
///
/// `Block` (the default, and the crate's historical behavior) is right
/// for embedded batch use where the submitter *is* the workload and
/// backpressure is the contract. The shedding policies are for serving:
/// under a traffic spike they bound every admitted query's queueing
/// delay by the queue depth and convert the excess into fast, explicit
/// [`crate::ServiceError::Overloaded`] rejections the caller can retry
/// against another replica (or via
/// [`crate::ServiceRouter::submit_with_retry`]).
///
/// The difference between `Shed` and `SmartShed` is what happens to a
/// submission that *could* coalesce onto an in-flight computation while
/// the queue is full: `Shed` rejects it without consulting the in-flight
/// table (strictest load bound — admitted work is capped by queue depth
/// plus in-flight waiters already accepted), while `SmartShed` admits it
/// (a join costs no queue slot and no compute, so shedding it wastes a
/// nearly-free answer). Cache hits are always admitted under every
/// policy: they never touch the queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Park the submitter until a queue slot frees (backpressure).
    #[default]
    Block,
    /// Reject every non-hit immediately with
    /// [`crate::ServiceError::Overloaded`] while the queue is full.
    Shed,
    /// Reject only submissions that would enqueue a new compute; joins
    /// onto a live flight (and cache hits) are always admitted.
    SmartShed,
}

/// Per-submission options for [`crate::QueryService::submit_with`] /
/// [`crate::ServiceRouter::submit_with`].
///
/// The default carries no deadline and is exactly
/// [`crate::QueryService::submit`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Relative deadline for the query, measured from submission. A job
    /// still queued when its deadline passes is dropped at dequeue —
    /// never computed — and resolves with
    /// [`crate::ServiceError::Expired`]. A job already computing when
    /// the deadline passes completes normally (compute is never
    /// interrupted mid-query; answers stay bit-identical).
    pub deadline: Option<Duration>,
}

impl QueryOptions {
    /// Options with no deadline (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a relative deadline for the query.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Bounded retry-with-jittered-backoff for submissions rejected with
/// [`crate::ServiceError::Overloaded`]
/// ([`crate::ServiceRouter::submit_with_retry`]).
///
/// Backoff for retry `n` (0-based) is `base_backoff · 2ⁿ`, capped at
/// `max_backoff`, then scaled by a deterministic jitter factor in
/// `[0.5, 1.0)` derived from `jitter_seed` — jitter decorrelates retry
/// herds without making test runs irreproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (`0` = try once, never retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5ca1_ab1e,
        }
    }
}

impl RetryPolicy {
    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the first-retry backoff.
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Sets the backoff ceiling.
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Sets the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The pause before retry number `attempt` (0-based): capped
    /// exponential backoff with deterministic jitter in `[0.5, 1.0)` of
    /// the capped value.
    pub fn backoff(&self, attempt: u32) -> Duration {
        // Saturate the shift well before `Duration` arithmetic can
        // overflow; the cap below bounds the result anyway.
        let factor = 1u32 << attempt.min(20);
        let capped = self.base_backoff.saturating_mul(factor).min(self.max_backoff);
        let bits =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Top 53 bits → uniform fraction in [0, 1), mapped to [0.5, 1.0)
        // so jitter never collapses a pause to zero.
        let fraction = 0.5 + (bits >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        capped.mul_f64(fraction)
    }
}

/// SplitMix64: a tiny seedable mixer, plenty for backoff jitter and the
/// fault plan's firing phases — keeps this crate free of a `rand`
/// dependency.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_nonzero() {
        let policy = RetryPolicy::default();
        for attempt in 0..40 {
            let a = policy.backoff(attempt);
            let b = policy.backoff(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give the same pause");
            assert!(a <= policy.max_backoff, "backoff must respect the cap");
            assert!(a >= policy.base_backoff / 2, "jitter floor is half the base");
        }
    }

    #[test]
    fn backoff_grows_before_the_cap() {
        let policy = RetryPolicy::default().with_max_backoff(Duration::from_secs(10));
        // With jitter in [0.5, 1.0), one doubling step may not be
        // monotone, but two always are: 2²·0.5 > 1·1.0.
        for attempt in 0..8 {
            assert!(
                policy.backoff(attempt + 2) > policy.backoff(attempt),
                "exponential growth must dominate jitter two steps apart"
            );
        }
    }

    #[test]
    fn jitter_seed_changes_the_sequence() {
        let a = RetryPolicy::default().with_jitter_seed(1);
        let b = RetryPolicy::default().with_jitter_seed(2);
        assert!(
            (0..8).any(|n| a.backoff(n) != b.backoff(n)),
            "distinct seeds should decorrelate at least one pause"
        );
    }

    #[test]
    fn default_policy_is_block() {
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Block);
        assert_eq!(QueryOptions::default().deadline, None);
    }
}
