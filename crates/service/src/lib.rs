//! # `laca-service` — a concurrent query-serving engine for LACA
//!
//! The paper's split is *offline preprocessing* (build the TNAM once)
//! versus *online queries* (sub-second per seed). This crate adds the
//! third piece a production deployment needs: a serving layer that
//! accepts, schedules and answers **many concurrent queries** over one
//! immutable preprocessed index.
//!
//! * [`ClusterIndex`] — graph + TNAM + params behind `Arc`s, cheap to
//!   clone, `Send + Sync` (statically asserted);
//! * [`QueryService`] — a fixed worker pool where each worker holds a
//!   persistent `DiffusionWorkspace` (checked out of
//!   [`laca_diffusion::WorkspacePool`]), fed by a bounded submission
//!   queue, with single ([`QueryService::query`]) and batched
//!   ([`QueryService::query_batch`]) entry points;
//! * [`ServiceRouter`] — one front door over many indices, keyed by
//!   [`RouteKey`] = `(dataset, index-fingerprint)`, with hot
//!   registration/retirement behind an `Arc`-swapped routing snapshot;
//! * [`cache::ShardedCache`] — a sharded LRU result cache keyed by
//!   `(seed, index-fingerprint)`, consulted on the submit path so hits
//!   never occupy a worker;
//! * [`cache::InFlightTable`] — single-flight coalescing: two concurrent
//!   misses on one key compute once, and both waiters receive the cached
//!   answer ([`ServiceStats::coalesced`] counts the joins);
//! * [`ServiceStats`] — a snapshot API over the hit/miss/latency
//!   counters, with [`QueryService::reset_stats`] /
//!   [`ServiceStats::delta_since`] for windowed measurements;
//! * **flight-recorder telemetry** — every submission is traced as a
//!   [`laca_telemetry::QuerySpan`] (admission → cache probe → queue →
//!   compute → reply, plus kernel counters) into preallocated
//!   per-worker rings ([`QueryService::flight_recorder`]), latencies
//!   land in log-bucketed histograms ([`ServiceStats::queue_wait_hist`]
//!   etc.), and [`QueryService::telemetry`] /
//!   [`ServiceRouter::telemetry`] render a Prometheus-style text
//!   exposition with stable `laca_*` names.
//!
//! Answers are **bit-identical** to serial [`laca_core::Laca::bdd`]; the
//! integration tests assert it across interleaved multi-threaded loads.
//!
//! ```
//! use laca_core::{LacaParams, MetricFn};
//! use laca_core::tnam::TnamConfig;
//! use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
//! use laca_service::{ClusterIndex, QueryService, ServiceConfig};
//!
//! let ds = AttributedGraphSpec {
//!     n: 200, n_clusters: 4, avg_degree: 6.0, p_intra: 0.85,
//!     missing_intra: 0.05, degree_exponent: 2.5, cluster_size_skew: 0.2,
//!     attributes: Some(AttributeSpec::default_for(32)), seed: 7,
//! }
//! .generate("demo")
//! .unwrap();
//!
//! // Offline: build the shared index once.
//! let index = ClusterIndex::from_dataset(
//!     &ds,
//!     &TnamConfig::new(8, MetricFn::Cosine),
//!     LacaParams::new(1e-4),
//! )
//! .unwrap();
//!
//! // Online: serve concurrent queries.
//! let service = QueryService::start(index, ServiceConfig::default().with_workers(2));
//! let answers = service.query_batch(&[0, 1, 2]);
//! assert!(answers.iter().all(|a| a.is_ok()));
//! // Re-querying an answered seed is a cache hit sharing the same Arc.
//! let again = service.query(0).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&again, answers[0].as_ref().unwrap()));
//! assert_eq!(service.stats().cache_hits, 1);
//! ```

pub mod admission;
pub mod cache;
#[cfg(laca_fault_inject)]
pub mod fault;
pub mod index;
pub mod router;
pub mod service;
pub mod snapshot;
pub mod sync;

#[cfg(all(test, laca_model_check))]
mod model_tests;

pub use admission::{AdmissionPolicy, QueryOptions, RetryPolicy};
pub use cache::ShardedCache;
#[cfg(laca_fault_inject)]
pub use fault::FaultPlan;
pub use index::{params_fingerprint, ClusterIndex};
pub use router::{DrainReport, RouteKey, RouterError, ServiceRouter};
pub use service::{
    QueryAnswer, QueryHandle, QueryResult, QueryService, ServiceConfig, ServiceError, ServiceStats,
};
// Telemetry vocabulary re-exported so downstreams can consume spans and
// registries without naming `laca-telemetry` directly.
pub use laca_telemetry::{
    FlightRecorder, HistogramSnapshot, MetricsRegistry, QuerySpan, SpanOutcome,
};

// The whole serving surface crosses threads by design; if any layer grows
// non-`Send`/`Sync` state, fail the build here rather than racing at
// runtime (`std::sync::mpsc::Receiver` keeps `QueryHandle` single-owner,
// which is intentional — a handle is waited on by its submitter).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ClusterIndex>();
    assert_send_sync::<QueryService>();
    assert_send_sync::<ServiceRouter>();
    assert_send_sync::<RouteKey>();
    assert_send_sync::<QueryAnswer>();
    assert_send_sync::<ServiceStats>();
    assert_send_sync::<AdmissionPolicy>();
    assert_send_sync::<QueryOptions>();
    assert_send_sync::<RetryPolicy>();
    assert_send_sync::<DrainReport>();
    #[cfg(laca_fault_inject)]
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<ShardedCache<(laca_graph::NodeId, u64), std::sync::Arc<QueryAnswer>>>();
    assert_send_sync::<cache::InFlightTable<(laca_graph::NodeId, u64), QueryResult>>();
    assert_send_sync::<snapshot::CowMap<RouteKey, std::sync::Arc<QueryService>>>();
};
