//! Sharded LRU result cache keyed by `(seed, params-fingerprint)`.
//!
//! Shape follows the classic serving-cache layout: the key space is
//! hash-partitioned into independent shards, each a fixed-capacity LRU so
//! concurrent lookups from different submitters contend on different
//! locks. Each shard's recency list is intrusive — nodes live in a slab
//! `Vec` and link by index — so a hit costs one hash probe plus two link
//! splices, with no allocation after the shard fills.

use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Sentinel index for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

/// One entry of the slab-backed doubly-linked recency list.
#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map (single shard).
#[derive(Debug)]
pub struct LruShard<K, V> {
    map: FxHashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Most-recently used node, or `NIL` when empty.
    head: usize,
    /// Least-recently used node (the eviction candidate), or `NIL`.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    /// An empty shard holding at most `capacity ≥ 1` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruShard {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Detaches node `idx` from the recency list (its links keep their
    /// stale values; callers re-link immediately).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links node `idx` in as the new head (most recently used).
    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently
    /// used entry when the shard is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.map.len() < self.capacity {
            // Room left: take a fresh slab slot.
            self.slab.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
            self.slab.len() - 1
        } else {
            // Full: recycle the LRU node in place.
            let idx = self.tail;
            debug_assert_ne!(idx, NIL);
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slab[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slab[idx].value = value;
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }
}

/// A hash-sharded LRU cache: `shards` independent [`LruShard`]s behind
/// their own locks, splitting `capacity` evenly (rounded up).
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
}

/// Minimum per-shard depth: below this, hash imbalance between shards
/// dominates (a 1-deep shard thrashes on any key collision), so small
/// caches collapse to fewer shards instead.
const MIN_PER_SHARD: usize = 8;

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of ≈`capacity` total entries split over at most `shards`
    /// shards (per-shard capacity `ceil(capacity / shards)`). The shard
    /// count is reduced so each shard holds at least `MIN_PER_SHARD`
    /// entries — lock sharding only pays once shards are deep enough that
    /// hash imbalance doesn't evict hot keys.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity.div_ceil(MIN_PER_SHARD));
        let per_shard = capacity.div_ceil(shards);
        ShardedCache { shards: (0..shards).map(|_| Mutex::new(LruShard::new(per_shard))).collect() }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = rustc_hash::FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key` in its shard, refreshing recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("cache shard poisoned").get(key)
    }

    /// Inserts `key → value` into its shard.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().expect("cache shard poisoned").insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().expect("cache shard poisoned").is_empty())
    }

    /// Total capacity (sum of shard capacities).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru = LruShard::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(1)); // refresh "a": "b" is now LRU
        lru.insert("c", 3); // evicts "b"
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(1));
        assert_eq!(lru.get(&"c"), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_insert_refreshes_existing_key() {
        let mut lru = LruShard::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh + overwrite: "b" is LRU
        lru.insert("c", 3); // evicts "b"
        assert_eq!(lru.get(&"a"), Some(10));
        assert_eq!(lru.get(&"b"), None);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut lru = LruShard::new(1);
        for i in 0..10u32 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&9), Some(9));
    }

    #[test]
    fn sharded_cache_splits_capacity_and_counts() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(64, 8);
        assert_eq!(cache.capacity(), 64);
        assert!(cache.is_empty());
        for i in 0..64 {
            cache.insert(i, i * 2);
        }
        assert!(cache.len() <= 64);
        let hits = (0..64).filter(|&i| cache.get(&i) == Some(i * 2)).count();
        // Uneven hashing can evict within a shard, but most entries fit.
        assert!(hits >= 48, "only {hits}/64 entries survived");
    }

    #[test]
    fn tiny_caches_collapse_to_one_deep_shard() {
        // 8 entries over a requested 8 shards would be 1-deep shards that
        // thrash on the first hash collision; the constructor must give a
        // single 8-deep shard instead, so a pool of ≤ 8 keys fully fits.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 8);
        assert_eq!(cache.capacity(), 8);
        for i in 0..8 {
            cache.insert(i, i);
        }
        for i in 0..8 {
            assert_eq!(cache.get(&i), Some(i), "entry {i} was evicted below capacity");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential test against a naive recency-list model: any
        /// operation sequence must produce identical hit/miss behavior.
        #[test]
        fn lru_matches_naive_model(
            capacity in 1usize..6,
            ops in proptest::collection::vec((0u32..8, 0u32..2), 1..60),
        ) {
            let mut lru = LruShard::new(capacity);
            // Model: Vec of (key, value), front = MRU, truncated to capacity.
            let mut model: Vec<(u32, u32)> = Vec::new();
            for (key, op) in ops {
                if op == 0 {
                    let expected = model.iter().position(|&(k, _)| k == key).map(|pos| {
                        let entry = model.remove(pos);
                        model.insert(0, entry);
                        model[0].1
                    });
                    prop_assert_eq!(lru.get(&key), expected, "get({}) diverged", key);
                } else {
                    let value = key.wrapping_mul(31);
                    if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(pos);
                    }
                    model.insert(0, (key, value));
                    model.truncate(capacity);
                    lru.insert(key, value);
                }
                prop_assert_eq!(lru.len(), model.len());
            }
        }
    }
}
