//! Sharded LRU result cache keyed by `(seed, index-fingerprint)`, plus
//! the single-flight [`InFlightTable`] that coalesces concurrent misses.
//!
//! Shape follows the classic serving-cache layout: the key space is
//! hash-partitioned into independent shards, each a fixed-capacity LRU so
//! concurrent lookups from different submitters contend on different
//! locks. Each shard's recency list is intrusive — nodes live in a slab
//! `Vec` and link by index — so a hit costs one hash probe plus two link
//! splices, with no allocation after the shard fills.
//!
//! The in-flight table is the cache's other half on the submit path: a
//! miss first consults it so that two concurrent misses on one key
//! compute once (the *leader* enqueues; *followers* park a waiter and
//! receive the leader's answer when it resolves). Entry lifetime is
//! independent of the LRU — evicting a cached answer never touches an
//! in-flight entry, so eviction under churn cannot deadlock a waiter or
//! force a second compute for the same flight.

use crate::sync::{mpsc, Mutex, PoisonError};
use laca_telemetry::QuerySpan;
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};

/// Sentinel index for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

/// One entry of the slab-backed doubly-linked recency list.
#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map (single shard).
#[derive(Debug)]
pub struct LruShard<K, V> {
    map: FxHashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Most-recently used node, or `NIL` when empty.
    head: usize,
    /// Least-recently used node (the eviction candidate), or `NIL`.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    /// An empty shard holding at most `capacity ≥ 1` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruShard {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Detaches node `idx` from the recency list (its links keep their
    /// stale values; callers re-link immediately).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links node `idx` in as the new head (most recently used).
    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently
    /// used entry when the shard is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.map.len() < self.capacity {
            // Room left: take a fresh slab slot.
            self.slab.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
            self.slab.len() - 1
        } else {
            // Full: recycle the LRU node in place.
            let idx = self.tail;
            debug_assert_ne!(idx, NIL);
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slab[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slab[idx].value = value;
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }
}

/// A hash-sharded LRU cache: `shards` independent [`LruShard`]s behind
/// their own locks, splitting `capacity` evenly (rounded up).
///
/// Shard locks recover from poisoning instead of panicking. The
/// critical sections run no user code for the service's key/value
/// shapes (keys are `(NodeId, u64)`, values are `Arc`s — their
/// `Hash`/`Eq`/`Clone` cannot panic), so a poisoned shard can only be
/// left behind by a panic *outside* the LRU mutation itself; recovering
/// keeps one crashed worker from cascading `Closed`-style failures into
/// every submitter's cache fast path.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
}

/// Minimum per-shard depth: below this, hash imbalance between shards
/// dominates (a 1-deep shard thrashes on any key collision), so small
/// caches collapse to fewer shards instead.
const MIN_PER_SHARD: usize = 8;

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of ≈`capacity` total entries split over at most `shards`
    /// shards (per-shard capacity `ceil(capacity / shards)`). The shard
    /// count is reduced so each shard holds at least `MIN_PER_SHARD`
    /// entries — lock sharding only pays once shards are deep enough that
    /// hash imbalance doesn't evict hot keys.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity.div_ceil(MIN_PER_SHARD));
        let per_shard = capacity.div_ceil(shards);
        ShardedCache { shards: (0..shards).map(|_| Mutex::new(LruShard::new(per_shard))).collect() }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = rustc_hash::FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key` in its shard, refreshing recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap_or_else(PoisonError::into_inner).get(key)
    }

    /// Inserts `key → value` into its shard.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().unwrap_or_else(PoisonError::into_inner).insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap_or_else(PoisonError::into_inner).is_empty())
    }

    /// Total capacity (sum of shard capacities).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).capacity).sum()
    }
}

/// Outcome of [`InFlightTable::join_or_lead`] for one submission.
#[derive(Debug)]
pub enum Submission<V> {
    /// A flight for this key already exists; the caller's waiter was
    /// registered and will receive the leader's result.
    Joined,
    /// No flight exists but the re-check closure produced a value: the
    /// previous flight resolved (cache insert happens-before entry
    /// removal) between the caller's fast-path miss and this call.
    Resolved(V),
    /// The caller leads a new flight (its waiter is registered too). It
    /// must enqueue the compute and eventually call
    /// [`InFlightTable::resolve`] for this key — on *every* path,
    /// including enqueue failure — or waiters hang until service drop.
    Leading,
}

/// Hash-sharded single-flight table: at most one in-flight computation
/// per key, with all interested submitters parked as `mpsc` waiters on
/// the entry.
///
/// Each waiter carries the [`QuerySpan`] it had assembled when it
/// parked; [`Self::resolve`] hands the spans back to the resolver so it
/// can stamp the resume/reply events and record them — the table itself
/// never touches a clock.
///
/// The submit-path protocol (see [`crate::QueryService::submit`]):
///
/// 1. fast path — probe the result cache; a hit never touches this table;
/// 2. on a miss, [`Self::join_or_lead`] under the key's shard lock:
///    an existing entry means a compute is in flight → join it; no entry
///    → re-check the cache (the flight may have resolved in between) and
///    otherwise insert a new entry and lead;
/// 3. whoever computed calls [`Self::resolve`], which removes the entry
///    and hands every waiter a clone of the result.
///
/// The re-check in step 2 runs under the shard lock, and resolvers insert
/// into the result cache *before* removing the entry, so the
/// "no entry + cache miss" state is only observable when no flight is in
/// progress — two concurrent misses on one key can never both lead.
///
/// Shard locks recover from poisoning instead of panicking: each map
/// operation is a single push/insert/remove with no invariant spanning
/// operations, so the state a panicking thread leaves behind is always
/// consistent — and the error-path resolves that unblock waiters after a
/// worker panic (see `worker_loop`) must keep working precisely when
/// something already panicked.
#[derive(Debug)]
pub struct InFlightTable<K, V> {
    shards: Vec<Mutex<FxHashMap<K, FlightWaiters<V>>>>,
}

/// One flight's parked waiters: each submitter's reply channel plus the
/// span it had assembled when it parked.
type FlightWaiters<V> = Vec<(mpsc::Sender<V>, QuerySpan)>;

/// In-flight shard count. Entries live for one compute (milliseconds) and
/// the population is bounded by the submission-queue depth, so a small
/// fixed fan-out is plenty.
const INFLIGHT_SHARDS: usize = 8;

impl<K: Hash + Eq, V: Clone> InFlightTable<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        InFlightTable {
            shards: (0..INFLIGHT_SHARDS).map(|_| Mutex::new(FxHashMap::default())).collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<FxHashMap<K, FlightWaiters<V>>> {
        let mut h = rustc_hash::FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Joins the key's flight if one is in progress, else re-checks the
    /// cache via `recheck`, else registers `waiter` on a fresh entry and
    /// makes the caller the leader. `span` is parked with the waiter and
    /// returned by [`Self::resolve`] for the resolver to finish (the
    /// leader's own span rides its queued job, so leaders register a
    /// placeholder — id 0 — that resolvers skip). `recheck` runs under
    /// the shard lock — it must only take locks that are never held
    /// while calling into this table (the result cache qualifies:
    /// resolvers insert into it *before* locking the shard here).
    pub fn join_or_lead(
        &self,
        key: K,
        waiter: mpsc::Sender<V>,
        span: QuerySpan,
        recheck: impl FnOnce() -> Option<V>,
    ) -> Submission<V> {
        let mut shard = self.shard(&key).lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(waiters) = shard.get_mut(&key) {
            waiters.push((waiter, span));
            return Submission::Joined;
        }
        if let Some(value) = recheck() {
            return Submission::Resolved(value);
        }
        // The leader's real span rides its queued job; its table entry
        // parks the id-0 placeholder so resolvers know to skip it.
        shard.insert(key, vec![(waiter, QuerySpan::default())]);
        Submission::Leading
    }

    /// Ends the key's flight: removes the entry and sends `value` to every
    /// registered waiter (waiters that dropped their receiver are
    /// skipped). Returns the parked spans so the resolver can stamp their
    /// resume/reply events — including spans of waiters whose receiver is
    /// gone (they parked; their timeline is still real). Empty when the
    /// key has no flight.
    pub fn resolve(&self, key: &K, value: V) -> Vec<QuerySpan> {
        let waiters = {
            let mut shard = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
            shard.remove(key)
        };
        // Send outside the lock: new submissions for this key can lead a
        // fresh flight while the old one's waiters drain.
        let waiters = waiters.unwrap_or_default();
        let mut spans = Vec::with_capacity(waiters.len());
        for (w, span) in waiters {
            let _ = w.send(value.clone());
            spans.push(span);
        }
        spans
    }

    /// Number of keys currently in flight (telemetry; racy by nature).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap_or_else(PoisonError::into_inner).is_empty())
    }
}

impl<K: Hash + Eq, V: Clone> Default for InFlightTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru = LruShard::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(1)); // refresh "a": "b" is now LRU
        lru.insert("c", 3); // evicts "b"
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(1));
        assert_eq!(lru.get(&"c"), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_insert_refreshes_existing_key() {
        let mut lru = LruShard::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh + overwrite: "b" is LRU
        lru.insert("c", 3); // evicts "b"
        assert_eq!(lru.get(&"a"), Some(10));
        assert_eq!(lru.get(&"b"), None);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut lru = LruShard::new(1);
        for i in 0..10u32 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&9), Some(9));
    }

    #[test]
    fn sharded_cache_splits_capacity_and_counts() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(64, 8);
        assert_eq!(cache.capacity(), 64);
        assert!(cache.is_empty());
        for i in 0..64 {
            cache.insert(i, i * 2);
        }
        assert!(cache.len() <= 64);
        let hits = (0..64).filter(|&i| cache.get(&i) == Some(i * 2)).count();
        // Uneven hashing can evict within a shard, but most entries fit.
        assert!(hits >= 48, "only {hits}/64 entries survived");
    }

    #[test]
    fn tiny_caches_collapse_to_one_deep_shard() {
        // 8 entries over a requested 8 shards would be 1-deep shards that
        // thrash on the first hash collision; the constructor must give a
        // single 8-deep shard instead, so a pool of ≤ 8 keys fully fits.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 8);
        assert_eq!(cache.capacity(), 8);
        for i in 0..8 {
            cache.insert(i, i);
        }
        for i in 0..8 {
            assert_eq!(cache.get(&i), Some(i), "entry {i} was evicted below capacity");
        }
    }

    /// A parked span distinguishable from the leader's placeholder.
    fn waiter_span(id: u64) -> QuerySpan {
        QuerySpan { id, parked_ns: id * 10, ..QuerySpan::default() }
    }

    #[test]
    fn inflight_leader_then_joiners_all_receive_one_resolve() {
        let table: InFlightTable<u32, u32> = InFlightTable::new();
        let (lead_tx, lead_rx) = mpsc::channel();
        assert!(matches!(
            table.join_or_lead(7, lead_tx, QuerySpan::default(), || None),
            Submission::Leading
        ));
        assert_eq!(table.len(), 1);
        let followers: Vec<_> = (0..3u64)
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                assert!(matches!(
                    table.join_or_lead(7, tx, waiter_span(i + 1), || panic!(
                        "recheck must not run for joiners"
                    )),
                    Submission::Joined
                ));
                rx
            })
            .collect();
        let spans = table.resolve(&7, 42);
        assert!(table.is_empty());
        assert_eq!(lead_rx.recv(), Ok(42));
        for rx in followers {
            assert_eq!(rx.recv(), Ok(42));
        }
        // The resolver gets every parked span back: the leader's
        // placeholder plus the three joiners, registration order.
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(spans[2].parked_ns, 20);
    }

    #[test]
    fn inflight_recheck_resolves_the_leader_race() {
        // A flight that resolved between the fast-path miss and
        // join_or_lead must surface as Resolved, not a second Leading.
        let table: InFlightTable<u32, u32> = InFlightTable::new();
        let (tx, _rx) = mpsc::channel();
        match table.join_or_lead(7, tx, QuerySpan::default(), || Some(99)) {
            Submission::Resolved(v) => assert_eq!(v, 99),
            other => panic!("expected Resolved, got {other:?}"),
        }
        assert!(table.is_empty(), "Resolved must not insert an entry");
    }

    #[test]
    fn inflight_resolve_ignores_dropped_waiters_and_missing_keys() {
        let table: InFlightTable<u32, u32> = InFlightTable::new();
        let (lead_tx, lead_rx) = mpsc::channel();
        assert!(matches!(
            table.join_or_lead(1, lead_tx, QuerySpan::default(), || None),
            Submission::Leading
        ));
        let (tx, rx) = mpsc::channel();
        assert!(matches!(table.join_or_lead(1, tx, waiter_span(9), || None), Submission::Joined));
        drop(rx);
        drop(lead_rx);
        // Dropped receivers: send errors swallowed, spans still handed
        // back (leader placeholder first, then the joiner).
        let spans = table.resolve(&1, 5);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 0);
        assert_eq!(spans[1].id, 9);
        assert!(table.resolve(&2, 6).is_empty()); // never-led key: no-op
        assert!(table.is_empty());
    }

    #[test]
    fn inflight_keys_are_independent_flights() {
        let table: InFlightTable<u32, u32> = InFlightTable::new();
        let rxs: Vec<_> = (0..INFLIGHT_SHARDS as u32 * 2)
            .map(|k| {
                let (tx, rx) = mpsc::channel();
                assert!(matches!(
                    table.join_or_lead(k, tx, QuerySpan::default(), || None),
                    Submission::Leading
                ));
                (k, rx)
            })
            .collect();
        assert_eq!(table.len(), INFLIGHT_SHARDS * 2);
        for (k, rx) in rxs {
            table.resolve(&k, k * 10);
            assert_eq!(rx.recv(), Ok(k * 10));
        }
        assert!(table.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential test against a naive recency-list model: any
        /// operation sequence must produce identical hit/miss behavior.
        #[test]
        fn lru_matches_naive_model(
            capacity in 1usize..6,
            ops in proptest::collection::vec((0u32..8, 0u32..2), 1..60),
        ) {
            let mut lru = LruShard::new(capacity);
            // Model: Vec of (key, value), front = MRU, truncated to capacity.
            let mut model: Vec<(u32, u32)> = Vec::new();
            for (key, op) in ops {
                if op == 0 {
                    let expected = model.iter().position(|&(k, _)| k == key).map(|pos| {
                        let entry = model.remove(pos);
                        model.insert(0, entry);
                        model[0].1
                    });
                    prop_assert_eq!(lru.get(&key), expected, "get({}) diverged", key);
                } else {
                    let value = key.wrapping_mul(31);
                    if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(pos);
                    }
                    model.insert(0, (key, value));
                    model.truncate(capacity);
                    lru.insert(key, value);
                }
                prop_assert_eq!(lru.len(), model.len());
            }
        }
    }
}
