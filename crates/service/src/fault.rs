//! Deterministic fault injection for the serving stack, compiled only
//! under `--cfg laca_fault_inject` (a sibling of the `laca_model_check`
//! cfg that swaps in the loom `sync` facade): release builds carry zero
//! fault-injection code or branches.
//!
//! A [`FaultPlan`] is a seeded schedule of faults over **event indices**
//! rather than wall-clock time. Each injection site in the worker loop
//! draws a monotonically increasing sequence number from the plan, and
//! the `(seed, site, period)` triple decides which draws fire: site `s`
//! with period `p` fires on every draw `n` with `n ≡ phase(seed, s)
//! (mod p)`. Two runs of the same plan over the same workload therefore
//! inject the same *number* of faults at the same event offsets no
//! matter how threads interleave — which is what `tests/faults.rs`
//! needs to assert exact outcome accounting on top of the
//! resolve-everything invariant.
//!
//! The four sites, in worker-loop order:
//!
//! 1. **queue stall** — the worker sleeps after dequeue, before anything
//!    else: queued jobs age toward their deadlines and the queue backs
//!    up toward the admission policy.
//! 2. **worker kill** — a panic *outside* the per-job containment: the
//!    worker dies, its exit guard closes the queue, and (if it was the
//!    last worker) strands nothing — every queued job is failed with
//!    [`crate::ServiceError::WorkerLost`].
//! 3. **slow compute** — a sleep *inside* the per-job containment,
//!    before the engine runs: admitted work takes longer, pushing
//!    later jobs past their deadlines.
//! 4. **job panic** — a panic inside the containment: the query fails
//!    with [`crate::ServiceError::QueryPanicked`], the worker survives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::admission::splitmix64;

const SITE_STALL: usize = 0;
const SITE_KILL: usize = 1;
const SITE_SLOW: usize = 2;
const SITE_PANIC: usize = 3;

/// A seeded, deterministic schedule of injected faults. Attach one to a
/// service with [`crate::ServiceConfig::with_fault_plan`]; a plan with
/// no sites configured injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    queue_stall: Option<(u64, Duration)>,
    worker_kill: Option<u64>,
    slow_compute: Option<(u64, Duration)>,
    job_panic: Option<u64>,
    sequences: [AtomicU64; 4],
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given phase seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Stall the dequeuing worker for `stall` on every `period`-th
    /// dequeue (periods are clamped to ≥ 1).
    pub fn with_queue_stall_every(mut self, period: u64, stall: Duration) -> Self {
        self.queue_stall = Some((period.max(1), stall));
        self
    }

    /// Kill the worker (a panic escaping the per-job containment) on
    /// every `period`-th dequeue.
    pub fn with_worker_kill_every(mut self, period: u64) -> Self {
        self.worker_kill = Some(period.max(1));
        self
    }

    /// Slow every `period`-th computed query down by `delay`.
    pub fn with_slow_compute_every(mut self, period: u64, delay: Duration) -> Self {
        self.slow_compute = Some((period.max(1), delay));
        self
    }

    /// Panic inside every `period`-th computed query (contained: the
    /// query fails, the worker survives).
    pub fn with_job_panic_every(mut self, period: u64) -> Self {
        self.job_panic = Some(period.max(1));
        self
    }

    /// Draws this site's next sequence number and decides whether the
    /// fault fires. The seeded per-site phase shifts *which* events
    /// fire, so distinct seeds exercise distinct (job, fault)
    /// alignments, while the firing count over `n` events stays
    /// `⌈(n - phase) / period⌉` — deterministic for a fixed workload.
    fn fires(&self, site: usize, period: u64) -> bool {
        let n = self.sequences[site].fetch_add(1, Ordering::Relaxed);
        let phase = splitmix64(self.seed ^ ((site as u64) << 32)) % period;
        n % period == phase
    }

    /// Injection site 1: called by the worker loop right after dequeue.
    pub(crate) fn stall_point(&self) {
        if let Some((period, stall)) = self.queue_stall {
            if self.fires(SITE_STALL, period) {
                std::thread::sleep(stall);
            }
        }
    }

    /// Injection site 2: called outside the per-job containment; a
    /// firing kill panics the worker thread itself.
    pub(crate) fn worker_kill_point(&self) {
        if let Some(period) = self.worker_kill {
            if self.fires(SITE_KILL, period) {
                panic!("laca_fault_inject: worker kill");
            }
        }
    }

    /// Injection sites 3 and 4: called inside the per-job containment,
    /// before the engine runs.
    pub(crate) fn compute_point(&self) {
        if let Some((period, delay)) = self.slow_compute {
            if self.fires(SITE_SLOW, period) {
                std::thread::sleep(delay);
            }
        }
        if let Some(period) = self.job_panic {
            if self.fires(SITE_PANIC, period) {
                panic!("laca_fault_inject: contained job panic");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Count of fired events over `draws` draws at `period`, replaying
    /// the plan's firing rule.
    fn fired(plan: &FaultPlan, site: usize, period: u64, draws: u64) -> u64 {
        (0..draws).filter(|_| plan.fires(site, period)).count() as u64
    }

    #[test]
    fn firing_count_is_deterministic_and_period_bound() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = FaultPlan::new(seed);
            let b = FaultPlan::new(seed);
            let fired_a = fired(&a, SITE_PANIC, 5, 100);
            let fired_b = fired(&b, SITE_PANIC, 5, 100);
            assert_eq!(fired_a, fired_b, "same seed, same schedule");
            assert_eq!(fired_a, 20, "period 5 over 100 draws fires exactly 20 times");
        }
    }

    #[test]
    fn distinct_seeds_shift_the_phase() {
        let phase_of = |seed: u64| {
            let plan = FaultPlan::new(seed);
            (0..7u64).position(|_| plan.fires(SITE_KILL, 7)).expect("one firing per period")
        };
        let phases: Vec<usize> = [1u64, 2, 3, 4, 5].iter().map(|&s| phase_of(s)).collect();
        assert!(
            phases.windows(2).any(|w| w[0] != w[1]),
            "five seeds should not all share one firing phase: {phases:?}"
        );
    }

    #[test]
    fn sites_draw_independent_sequences() {
        let plan = FaultPlan::new(9);
        // Draining one site's sequence must not advance another's: the
        // panic site still fires exactly every 2nd of its own draws.
        for _ in 0..10 {
            let _ = plan.fires(SITE_KILL, 7);
        }
        assert_eq!(fired(&plan, SITE_PANIC, 2, 10), 5);
    }
}
