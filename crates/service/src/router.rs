//! Multi-index routing: one serving front door over many
//! [`ClusterIndex`]es.
//!
//! The paper's query model is inherently multi-tenant — every query
//! carries its own seed *and* parameterization over a fixed preprocessed
//! index, and user-preference variants imply many param-distinct indices
//! served side by side. The [`ServiceRouter`] owns one [`QueryService`]
//! (worker pool + result cache + in-flight table) per registered index,
//! keyed by [`RouteKey`] = `(dataset, index-fingerprint)`, and routes
//! each submission to its index's pool.
//!
//! Registration and retirement are **hot**: the routing table is an
//! immutable snapshot behind an `Arc` that writers replace wholesale
//! (copy-on-write) — readers clone the `Arc` under a briefly-held lock
//! and then route against the snapshot lock-free, so a registration can
//! never stall the submit path behind an index build, and retiring an
//! index lets its in-flight queries drain before the worker pool joins
//! (whoever drops the last reference joins it).

use crate::admission::{QueryOptions, RetryPolicy};
use crate::service::{fill_route_metrics, QueryHandle, QueryResult, ServiceStats};
use crate::snapshot::CowMap;
use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};
use crate::{ClusterIndex, QueryService, ServiceConfig, ServiceError};
use laca_graph::NodeId;
use laca_telemetry::MetricsRegistry;
use rustc_hash::FxHashMap;

/// Identity of one served index: the dataset it was built over plus the
/// index fingerprint ([`ClusterIndex::fingerprint`] —
/// [`laca_core::LacaParams::fingerprint`] combined with the TNAM
/// config's fingerprint). Two indices over the same dataset with
/// different `ε`/`α`/backend — or the same params over TNAMs built with
/// different `k`/metric/seed — get distinct keys, so routing can never
/// mix parameterizations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteKey {
    dataset: Arc<str>,
    fingerprint: u64,
}

impl RouteKey {
    /// A key from a dataset label and an index fingerprint (usually via
    /// [`ClusterIndex::route_key`], which derives both from the index).
    pub fn new(dataset: impl Into<Arc<str>>, fingerprint: u64) -> Self {
        RouteKey { dataset: dataset.into(), fingerprint }
    }

    /// The dataset label.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The index fingerprint (params + TNAM identity).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl std::fmt::Display for RouteKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{:016x}", self.dataset, self.fingerprint)
    }
}

/// Errors surfaced by the router API (on top of per-query
/// [`ServiceError`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum RouterError {
    /// No index is registered under the requested key.
    UnknownRoute(RouteKey),
    /// [`ServiceRouter::register`] was asked to overwrite a live route;
    /// retire the old index first (or pick a distinct key) so replacement
    /// is always an explicit two-step.
    DuplicateRoute(RouteKey),
    /// The router is draining ([`ServiceRouter::drain`]): admission and
    /// registration are fenced while in-flight work flushes. Drain is
    /// terminal — route new traffic to another router.
    Draining,
    /// The routed query itself failed.
    Service(ServiceError),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::UnknownRoute(key) => write!(f, "no index registered for {key}"),
            RouterError::DuplicateRoute(key) => {
                write!(f, "an index is already registered for {key}")
            }
            RouterError::Draining => write!(f, "router is draining; admission is fenced"),
            RouterError::Service(e) => write!(f, "routed query failed: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<ServiceError> for RouterError {
    fn from(e: ServiceError) -> Self {
        RouterError::Service(e)
    }
}

/// The immutable routing snapshot writers swap wholesale (the map
/// behind [`crate::snapshot::CowMap::snapshot`]).
type RouteTable = FxHashMap<RouteKey, Arc<QueryService>>;

/// A serving front door over many indices: routes each submission to the
/// [`QueryService`] registered for its [`RouteKey`].
///
/// ```text
/// clients ──▶ ServiceRouter ──(RouteKey)──▶ QueryService (pubmed, ε=1e-4)
///                          └──(RouteKey)──▶ QueryService (pubmed, ε=1e-3)
///                          └──(RouteKey)──▶ QueryService (arxiv,  ε=1e-4)
/// ```
///
/// Each route keeps its own worker pool, workspace pool, result cache and
/// in-flight coalescing table, so tenants are fully isolated: a hot
/// dataset saturating its workers cannot starve another route's queue,
/// and cache keys never collide across parameterizations. Registration
/// and retirement swap an `Arc`'d snapshot of the table (the
/// [`CowMap`] copy-on-write protocol, model-checked in
/// `model_tests`), so routing stays lock-free-in-spirit — readers hold
/// the lock only to clone the `Arc` — while indices come and go under
/// live traffic.
pub struct ServiceRouter {
    routes: CowMap<RouteKey, Arc<QueryService>>,
    /// One-way drain latch (0 = admitting, 1 = draining; the sync facade
    /// carries no `AtomicBool`). Set by [`Self::drain`], checked on
    /// every admission-side entry point.
    draining: AtomicU32,
    /// Submissions re-attempted by [`Self::submit_with_retry`] after an
    /// `Overloaded` rejection; surfaced as [`ServiceStats::retried`] in
    /// the router's aggregates.
    retried: AtomicU64,
    /// Final counter snapshots of retired routes, in retirement order.
    /// Retirement would otherwise erase a route's history from
    /// [`Self::telemetry`] mid-scrape; archiving the last [`ServiceStats`]
    /// keeps `laca_*_total` series monotone across the route's lifetime.
    /// Level 4 (`telemetry-archive`) in the lock hierarchy: always
    /// acquired *after* any snapshot walk that touches cache shards.
    archive: Mutex<Vec<(RouteKey, ServiceStats)>>,
}

impl ServiceRouter {
    /// An empty router; add indices with [`Self::register`].
    pub fn new() -> Self {
        ServiceRouter {
            routes: CowMap::new(),
            draining: AtomicU32::new(0),
            retried: AtomicU64::new(0),
            archive: Mutex::new(Vec::new()),
        }
    }

    /// `Err(Draining)` once [`Self::drain`] has fenced admission.
    fn admitting(&self) -> Result<(), RouterError> {
        // ordering: Relaxed load — the drain latch is one-way and
        // advisory on the admission path; a submission racing the flip
        // is indistinguishable from one ordered just before it, and the
        // drained services themselves fail late submissions `Closed`.
        if self.draining.load(Ordering::Relaxed) != 0 {
            return Err(RouterError::Draining);
        }
        Ok(())
    }

    /// The current routing snapshot (cheap: one `Arc` clone under a read
    /// lock).
    fn snapshot(&self) -> Arc<RouteTable> {
        self.routes.snapshot()
    }

    /// Registers `index` under its own [`ClusterIndex::route_key`] and
    /// starts a [`QueryService`] worker pool for it. Returns the key
    /// submissions should use. Fails with [`RouterError::DuplicateRoute`]
    /// when the key is already live — replacement is retire-then-register.
    pub fn register(
        &self,
        index: ClusterIndex,
        config: ServiceConfig,
    ) -> Result<RouteKey, RouterError> {
        self.admitting()?;
        let key = index.route_key();
        // Cheap duplicate probe first, so re-registering a live key does
        // not pay worker-pool spin-up and teardown just to be rejected...
        if self.snapshot().contains_key(&key) {
            return Err(RouterError::DuplicateRoute(key));
        }
        // ...then start the pool before taking the write lock: index
        // spin-up must not stall concurrent registrations behind thread
        // creation. `insert_if_absent` re-checks under the write lock,
        // settling races the probe above cannot (two concurrent
        // registers of the same key); the loser's freshly started pool
        // is handed back and joins here, outside the lock.
        let service = Arc::new(QueryService::start(index, config));
        match self.routes.insert_if_absent(key.clone(), service) {
            Ok(()) => Ok(key),
            Err(rejected) => {
                drop(rejected);
                Err(RouterError::DuplicateRoute(key))
            }
        }
    }

    /// Removes the key's route. Returns `false` when the key was not
    /// registered. In-flight queries on the retired index complete
    /// normally: submissions that already resolved the old snapshot keep
    /// the service alive, and its worker pool drains and joins when the
    /// last reference drops.
    pub fn retire(&self, key: &RouteKey) -> bool {
        // If ours was the last reference, the worker pool joins on this
        // drop — `CowMap::remove` returns the value after releasing the
        // write lock, so retirement can never block routing on a drain.
        match self.routes.remove(key) {
            Some(service) => {
                self.archive_route(key.clone(), service.stats());
                true
            }
            None => false,
        }
    }

    /// Parks a retired route's final counters for [`Self::telemetry`].
    /// Must be called with no snapshot-walk locks held above level 4 —
    /// i.e. after `stats()` has already released every cache shard.
    fn archive_route(&self, key: RouteKey, stats: ServiceStats) {
        let mut archive = self.archive.lock().unwrap_or_else(PoisonError::into_inner);
        match archive.iter_mut().find(|(k, _)| *k == key) {
            // A key can retire more than once (retire, re-register,
            // retire again); generations merge so the archive keeps one
            // entry per distinct route identity.
            Some((_, prior)) => prior.merge(&stats),
            None => archive.push((key, stats)),
        }
    }

    /// The service behind `key`, if registered. Handy for pinning a route
    /// across many calls ([`QueryService::query_batch`] etc.) without
    /// re-resolving per query; the returned service outlives retirement.
    pub fn route(&self, key: &RouteKey) -> Option<Arc<QueryService>> {
        self.snapshot().get(key).map(Arc::clone)
    }

    /// Submits one seed query to the index registered under `key`.
    /// Identical semantics to [`QueryService::submit`] — cache fast path,
    /// single-flight coalescing of concurrent identical misses, bounded
    /// backpressure — plus the routing hop.
    ///
    /// # Example
    ///
    /// ```
    /// use laca_core::tnam::TnamConfig;
    /// use laca_core::{LacaParams, MetricFn};
    /// use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
    /// use laca_service::{ClusterIndex, ServiceConfig, ServiceRouter};
    ///
    /// let ds = AttributedGraphSpec {
    ///     n: 120, n_clusters: 3, avg_degree: 6.0, p_intra: 0.85,
    ///     missing_intra: 0.05, degree_exponent: 0.0, cluster_size_skew: 0.0,
    ///     attributes: Some(AttributeSpec::default_for(24)), seed: 3,
    /// }
    /// .generate("demo")
    /// .unwrap();
    /// let tnam_config = TnamConfig::new(8, MetricFn::Cosine);
    ///
    /// // One router, two parameterizations of the same dataset.
    /// let router = ServiceRouter::new();
    /// let fine = router
    ///     .register(
    ///         ClusterIndex::from_dataset(&ds, &tnam_config, LacaParams::new(1e-4)).unwrap(),
    ///         ServiceConfig::default().with_workers(1),
    ///     )
    ///     .unwrap();
    /// let coarse = router
    ///     .register(
    ///         ClusterIndex::from_dataset(&ds, &tnam_config, LacaParams::new(1e-2)).unwrap(),
    ///         ServiceConfig::default().with_workers(1),
    ///     )
    ///     .unwrap();
    /// assert_ne!(fine, coarse, "distinct params, distinct routes");
    ///
    /// // Submissions carry the route key; handles wait as usual.
    /// let handle = router.submit(&fine, 0).unwrap();
    /// let answer = handle.wait().unwrap();
    /// assert!(answer.rho.support_size() > 0);
    ///
    /// // Retiring a route fails later submissions fast.
    /// assert!(router.retire(&coarse));
    /// assert!(router.submit(&coarse, 0).is_err());
    /// ```
    pub fn submit(&self, key: &RouteKey, seed: NodeId) -> Result<QueryHandle, RouterError> {
        self.submit_with(key, seed, &QueryOptions::default())
    }

    /// [`Self::submit`] with per-query options (deadline); see
    /// [`QueryService::submit_with`].
    pub fn submit_with(
        &self,
        key: &RouteKey,
        seed: NodeId,
        opts: &QueryOptions,
    ) -> Result<QueryHandle, RouterError> {
        self.admitting()?;
        match self.snapshot().get(key) {
            Some(service) => Ok(service.submit_with(seed, opts)),
            None => Err(RouterError::UnknownRoute(key.clone())),
        }
    }

    /// [`Self::submit_with`] plus bounded retry of submissions the
    /// route shed with [`ServiceError::Overloaded`]: each rejection
    /// sleeps the policy's jittered exponential backoff and resubmits,
    /// up to [`RetryPolicy::max_retries`] times (every retry counted in
    /// [`ServiceStats::retried`]). The final attempt's handle is
    /// returned as-is — still `Overloaded` if the overload outlasted the
    /// retry budget. Routing errors (unknown route, draining) are never
    /// retried; only overload is transient by construction.
    pub fn submit_with_retry(
        &self,
        key: &RouteKey,
        seed: NodeId,
        opts: &QueryOptions,
        retry: &RetryPolicy,
    ) -> Result<QueryHandle, RouterError> {
        let mut attempt = 0;
        loop {
            let handle = self.submit_with(key, seed, opts)?;
            if attempt >= retry.max_retries
                || !matches!(handle.immediate_error(), Some(ServiceError::Overloaded))
            {
                return Ok(handle);
            }
            self.retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(retry.backoff(attempt));
            attempt += 1;
        }
    }

    /// Routes one seed query and blocks for its answer.
    pub fn query(
        &self,
        key: &RouteKey,
        seed: NodeId,
    ) -> Result<Arc<crate::QueryAnswer>, RouterError> {
        self.submit(key, seed)?.wait().map_err(RouterError::from)
    }

    /// Submits a batch to one route and waits for every answer in input
    /// order, resolving the route once for the whole batch.
    pub fn query_batch(
        &self,
        key: &RouteKey,
        seeds: &[NodeId],
    ) -> Result<Vec<QueryResult>, RouterError> {
        self.admitting()?;
        match self.snapshot().get(key) {
            Some(service) => Ok(service.query_batch(seeds)),
            None => Err(RouterError::UnknownRoute(key.clone())),
        }
    }

    /// Keys of every live route, in unspecified order.
    pub fn keys(&self) -> Vec<RouteKey> {
        self.snapshot().keys().cloned().collect()
    }

    /// Number of live routes.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when no index is registered.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// One route's counter snapshot, if the route is live.
    pub fn stats(&self, key: &RouteKey) -> Option<ServiceStats> {
        self.snapshot().get(key).map(|s| s.stats())
    }

    /// Per-route counter snapshots for every live route.
    pub fn stats_by_route(&self) -> Vec<(RouteKey, ServiceStats)> {
        self.snapshot().iter().map(|(k, s)| (k.clone(), s.stats())).collect()
    }

    /// Prometheus-style exposition across every route, live and retired.
    ///
    /// Each live route renders the full per-route family set
    /// ([`QueryService::telemetry`] semantics: `laca_*_total` counters,
    /// worker/cache gauges, latency summaries, and per-ring span-drop
    /// counters from its flight recorder). Retired routes contribute
    /// their archived final counters — no gauges change meaning, but the
    /// `_total` series survive retirement, so a scraper never sees a
    /// counter vanish or reset just because an index was swapped out. A
    /// key that was retired and re-registered folds its archived
    /// generations into the live snapshot, keeping its series monotone.
    ///
    /// Lock order: live `stats()` snapshots (cache shards, level 3)
    /// complete before the archive lock (level 4, `telemetry-archive`)
    /// is acquired.
    pub fn telemetry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        // Snapshot live stats first: `stats()` walks each route's cache
        // shards, so every level-3 lock is released before the archive
        // lock below.
        let live: Vec<_> = self
            .snapshot()
            .iter()
            .map(|(key, service)| (key.clone(), service.stats(), Arc::clone(service)))
            .collect();
        let archived = self.archive.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let live_keys: Vec<RouteKey> = live.iter().map(|(key, _, _)| key.clone()).collect();
        for (key, mut stats, service) in live {
            if let Some((_, prior)) = archived.iter().find(|(k, _)| *k == key) {
                stats.merge(prior);
            }
            fill_route_metrics(
                &mut registry,
                &key.to_string(),
                &stats,
                Some(service.flight_recorder()),
            );
        }
        for (key, stats) in &archived {
            if !live_keys.contains(key) {
                fill_route_metrics(&mut registry, &key.to_string(), stats, None);
            }
        }
        registry
    }

    /// Counters summed across every live route (gauges — workers, cache
    /// capacity/entries — sum too: they describe the aggregate fleet).
    pub fn aggregate_stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for service in self.snapshot().values() {
            total.merge(&service.stats());
        }
        // ordering: Relaxed load — advisory telemetry, same contract as
        // every per-service counter snapshot.
        total.retried += self.retried.load(Ordering::Relaxed);
        total
    }

    /// Zeroes every live route's counters ([`QueryService::reset_stats`])
    /// and the router's own retry counter.
    pub fn reset_stats(&self) {
        for service in self.snapshot().values() {
            service.reset_stats();
        }
        // ordering: Relaxed store — advisory telemetry reset, same
        // contract as `Counters::reset` (racing increments may be lost).
        self.retried.store(0, Ordering::Relaxed);
    }

    /// Graceful drain: fence admission, then flush and retire every
    /// route.
    ///
    /// The sequence per route mirrors hot retirement ([`Self::retire`]),
    /// plus a flush barrier:
    ///
    /// 1. the route is removed from the table (new resolutions of the
    ///    key fail [`RouterError::UnknownRoute`]; the router-wide fence
    ///    already fails everything [`RouterError::Draining`]);
    /// 2. its service's queue closes — submissions through pinned
    ///    [`Self::route`] handles fail fast with
    ///    [`ServiceError::Closed`] while queued jobs keep draining;
    /// 3. if ours was the last reference, the worker pool flushes every
    ///    queued job (each resolves: answer, error, or `Expired`) and
    ///    joins; otherwise the route is reported as *pinned* and its
    ///    pool joins when the pinning `Arc` drops.
    ///
    /// The report carries each route's final counters and the merged
    /// totals — [`ServiceStats::drained`], [`ServiceStats::shed`] and
    /// [`ServiceStats::expired`] say what the drain flushed and what the
    /// overload path refused. Draining is **terminal**: the router never
    /// admits again (register/submit/query all fail `Draining`).
    /// Idempotent — a second call reports whatever routes remain (none,
    /// unless registrations raced the first drain).
    pub fn drain(&self) -> DrainReport {
        // ordering: Relaxed store — the one-way latch needs no ordering
        // against the table walk below; `CowMap::remove` is the
        // authoritative fence per route.
        self.draining.store(1, Ordering::Relaxed);
        let mut routes = Vec::new();
        let mut totals = ServiceStats::default();
        let mut pinned = 0;
        for key in self.keys() {
            let Some(service) = self.routes.remove(&key) else { continue };
            // Fence the route's own admission immediately: queued work
            // keeps draining, pinned-handle submissions fail `Closed`.
            service.close();
            let stats = match Arc::try_unwrap(service) {
                // Ours was the last reference: flush the queue, join the
                // pool, report the final counters.
                Ok(service) => service.shutdown(),
                // Someone still pins the route (`Self::route`); its pool
                // joins when they drop it. Snapshot what is visible now.
                Err(service) => {
                    pinned += 1;
                    service.stats()
                }
            };
            totals.merge(&stats);
            self.archive_route(key.clone(), stats.clone());
            routes.push((key, stats));
        }
        // ordering: Relaxed load — advisory telemetry (see
        // `aggregate_stats`).
        totals.retried += self.retried.load(Ordering::Relaxed);
        DrainReport { routes, totals, pinned }
    }
}

/// What [`ServiceRouter::drain`] flushed: per-route final counter
/// snapshots, their merged totals, and how many routes could not be
/// fully joined because external `Arc`s still pin them.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Final counters per drained route, in drain order.
    pub routes: Vec<(RouteKey, ServiceStats)>,
    /// All per-route snapshots merged, plus the router's retry counter.
    /// `totals.drained` is the number of jobs flushed after the fence;
    /// `totals.shed`/`totals.expired` are what overload handling refused
    /// or timed out across the router's lifetime.
    pub totals: ServiceStats,
    /// Routes whose worker pools could not be joined here because
    /// external [`ServiceRouter::route`] handles still pin them (their
    /// stats are point-in-time snapshots, and their pools join when the
    /// last pin drops).
    pub pinned: usize,
}

impl Default for ServiceRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServiceRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRouter").field("routes", &self.keys()).finish()
    }
}
