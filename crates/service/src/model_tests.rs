//! Schedule-exploring model checks over the crate's real concurrency
//! primitives: the bounded [`JobQueue`], the single-flight
//! [`InFlightTable`], and the router's [`CowMap`] snapshot.
//!
//! Compiled (and run) only under `--cfg laca_model_check`, where the
//! crate's `sync` facade resolves to the loom stand-in — the code under
//! test here is byte-for-byte the code production uses, not a model of
//! it. Each test wraps its body in `loom::model`, which executes the
//! closure under every thread interleaving within the preemption bound
//! and fails on any deadlock (= lost wakeup), panic, or violated
//! assertion on any schedule.

use crate::cache::{InFlightTable, Submission};
use crate::service::{JobQueue, TryPushError};
use crate::snapshot::CowMap;
use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use crate::sync::{mpsc, Arc, Mutex};
use laca_telemetry::QuerySpan;
use loom::thread;

/// Two producers racing a consumer through a capacity-1 queue: every
/// push must eventually be popped on every schedule. A lost wakeup in
/// the push/pop condvar protocol (e.g. a `notify_one` consumed by the
/// wrong waiter class, or a check-then-wait window) surfaces as a model
/// deadlock here.
#[test]
fn job_queue_no_lost_wakeups_under_backpressure() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(1));
        let q2 = Arc::clone(&queue);
        let producer = thread::spawn(move || {
            for i in 0..3u32 {
                q2.push(i).expect("queue closed prematurely");
            }
        });
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(queue.pop().expect("queue closed prematurely"));
        }
        producer.join().unwrap();
        // Single producer, single consumer: strict FIFO even while the
        // bound forces the producer to block between pushes.
        assert_eq!(seen, vec![0, 1, 2]);
    });
}

/// `close` must wake both waiter classes: a consumer parked on
/// `not_empty` gets `None`, and a producer parked on `not_full` (queue
/// at capacity) gets `Err(Closed)` instead of sleeping forever.
#[test]
fn job_queue_close_unblocks_producers_and_consumers() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(1));
        queue.push(7).unwrap();
        let q2 = Arc::clone(&queue);
        // Blocks on the full queue until the consumer pops or close runs.
        let producer = thread::spawn(move || q2.push(8));
        let q3 = Arc::clone(&queue);
        let closer = thread::spawn(move || q3.close());
        closer.join().unwrap();
        let _ = producer.join().unwrap(); // Ok(()) or Err(Closed), never hangs
                                          // Whatever was enqueued before the close still drains...
        let mut drained = 0;
        while queue.pop().is_some() {
            drained += 1;
        }
        assert!((1..=2).contains(&drained));
        // ...and a drained+closed queue pops `None` forever.
        assert!(queue.pop().is_none());
    });
}

/// The shed-vs-enqueue race: a blocking `push` and a non-blocking
/// `try_push` racing a consumer through a capacity-1 queue. On every
/// schedule `try_push` returns immediately (admitted, or `Full` with
/// the job handed back — the shed path never parks a submitter), and
/// exactly the admitted jobs come out: nothing lost, nothing invented.
#[test]
fn job_queue_try_push_sheds_or_admits_never_blocks() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(1));
        let q2 = Arc::clone(&queue);
        let blocking = thread::spawn(move || q2.push(1).is_ok());
        let q3 = Arc::clone(&queue);
        let shedding = thread::spawn(move || match q3.try_push(2) {
            Ok(()) => true,
            Err(TryPushError::Full(job)) => {
                assert_eq!(job, 2, "a shed job is handed back intact");
                false
            }
            Err(TryPushError::Closed(_)) => panic!("nobody closes this queue"),
        });
        // One pop is always safe: the blocking push succeeds eventually
        // on every schedule. Then the shed thread's verdict tells us
        // exactly how many more to expect.
        let first = queue.pop().expect("open queue");
        let admitted = shedding.join().unwrap();
        let mut seen = vec![first];
        if admitted {
            seen.push(queue.pop().expect("open queue"));
        }
        assert!(blocking.join().unwrap(), "blocking push always lands");
        seen.sort_unstable();
        let expected: Vec<u32> = if admitted { vec![1, 2] } else { vec![1] };
        assert_eq!(seen, expected);
    });
}

/// The deadline-expiry/cancel-vs-dequeue race, modeled over the real
/// queue and reply protocol: a canceller flips the job's one-way latch
/// while the worker dequeues, checks it, and replies "computed" or
/// "expired". Exactly one reply reaches the waiter on every schedule —
/// a lost reply (the hang this protocol must exclude) would deadlock
/// the model's `recv`.
#[test]
fn job_queue_cancel_vs_dequeue_exactly_one_reply() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<(Arc<AtomicU32>, mpsc::Sender<bool>)>::new(1));
        let cancel = Arc::new(AtomicU32::new(0));
        let (tx, rx) = mpsc::channel();
        queue.push((Arc::clone(&cancel), tx)).expect("open queue");
        let c2 = Arc::clone(&cancel);
        let canceller = thread::spawn(move || c2.store(1, Ordering::Relaxed));
        let q2 = Arc::clone(&queue);
        let worker = thread::spawn(move || {
            let (latch, reply) = q2.pop().expect("job queued");
            // The worker-loop protocol: check the latch once at dequeue,
            // then send exactly one reply either way.
            let computed = latch.load(Ordering::Relaxed) == 0;
            reply.send(computed).expect("waiter alive");
        });
        // Either verdict is legal (the cancel raced the dequeue); the
        // invariant is one reply on every schedule, never zero.
        let _verdict = rx.recv().expect("exactly one reply");
        canceller.join().unwrap();
        worker.join().unwrap();
    });
}

/// The drain-vs-submit race: `close` racing a non-blocking submission.
/// On every schedule the submission either lands before the fence (and
/// is then handed out flagged as drained) or fails `Closed` with the
/// job handed back — accepted-implies-resolved, rejected-implies-
/// hands-back, no third outcome.
#[test]
fn job_queue_close_vs_try_push_no_job_stranded() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(2));
        let q2 = Arc::clone(&queue);
        let submitter = thread::spawn(move || match q2.try_push(5) {
            Ok(()) => true,
            Err(TryPushError::Closed(job)) => {
                assert_eq!(job, 5, "a rejected job is handed back intact");
                false
            }
            Err(TryPushError::Full(_)) => panic!("capacity-2 queue never fills here"),
        });
        let q3 = Arc::clone(&queue);
        let closer = thread::spawn(move || q3.close());
        closer.join().unwrap();
        let admitted = submitter.join().unwrap();
        let mut drained = 0;
        while let Some((job, closed)) = queue.pop_drained() {
            assert_eq!(job, 5);
            assert!(closed, "post-close pops are flagged as drain flushes");
            drained += 1;
        }
        assert_eq!(drained, usize::from(admitted), "admitted ⇔ flushed");
    });
}

/// The batch-formation drain against a blocked producer: a worker's
/// head pop plus `try_pop_many` free several slots at once, and every
/// producer parked on `not_full` must wake — a `notify_one` where the
/// drain freed more than one slot (or a drain that never notifies)
/// surfaces as a model deadlock on the producer's join.
#[test]
fn job_queue_batch_drain_wakes_blocked_producers() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(2));
        queue.push(0).unwrap();
        queue.push(1).unwrap();
        let q2 = Arc::clone(&queue);
        // Blocks on the full queue until formation frees a slot.
        let producer = thread::spawn(move || q2.push(2).is_ok());
        // The worker-loop protocol: one blocking head pop, then the
        // non-blocking formation drain.
        let (head, _closed) = queue.pop_drained().expect("open queue");
        let mut group = vec![head];
        let _ = queue.try_pop_many(&mut group, 3);
        assert!(producer.join().unwrap(), "freed slots must wake the parked producer");
        // Whatever formation missed is still in the queue: every
        // admitted job surfaces exactly once, none invented, none lost.
        let mut rest = Vec::new();
        let _ = queue.try_pop_many(&mut rest, 3);
        let mut all: Vec<u32> = group.into_iter().chain(rest).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    });
}

/// `close` racing batch formation: the head pop and the drain together
/// must hand out every admitted job exactly once — no job stranded in a
/// half-formed group — and the drained-through-shutdown flag stays
/// monotone (once the head pop observes closed, the drain does too).
#[test]
fn job_queue_close_vs_batch_drain_strands_nothing() {
    loom::model(|| {
        let queue = Arc::new(JobQueue::<u32>::new(4));
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        let q2 = Arc::clone(&queue);
        let closer = thread::spawn(move || q2.close());
        let (head, head_closed) = queue.pop_drained().expect("two jobs queued");
        let mut group = vec![head];
        let (_extra, drain_closed) = queue.try_pop_many(&mut group, 7);
        assert_eq!(group, vec![1, 2], "formation hands out every admitted job in order");
        assert!(
            !head_closed || drain_closed,
            "the closed flag is sticky: a post-close head pop implies a post-close drain"
        );
        closer.join().unwrap();
        // Drained + closed: the queue pops `None` forever, on every
        // schedule — nothing left behind for a worker that already exited.
        assert!(queue.pop().is_none());
    });
}

/// Cancel racing batch-formation drain, over the real queue and reply
/// protocol: two queued jobs form one group; a canceller flips the
/// second job's latch while the worker drains, checks each latch once,
/// and replies per job. Exactly one reply reaches each waiter on every
/// schedule — zero replies would deadlock the model's `recv`, two would
/// panic the channel assertion.
#[test]
fn job_queue_cancel_vs_batch_drain_exactly_one_reply_per_job() {
    loom::model(|| {
        type ModelJob = (Arc<AtomicU32>, mpsc::Sender<bool>);
        let queue = Arc::new(JobQueue::<ModelJob>::new(2));
        let cancel = Arc::new(AtomicU32::new(0));
        let (tx1, rx1) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        queue.push((Arc::new(AtomicU32::new(0)), tx1)).expect("open queue");
        queue.push((Arc::clone(&cancel), tx2)).expect("open queue");
        let c2 = Arc::clone(&cancel);
        let canceller = thread::spawn(move || c2.store(1, Ordering::Relaxed));
        let q2 = Arc::clone(&queue);
        let worker = thread::spawn(move || {
            let (head, _) = q2.pop_drained().expect("jobs queued");
            let mut group = vec![head];
            let _ = q2.try_pop_many(&mut group, 1);
            assert_eq!(group.len(), 2, "both queued jobs form one group");
            for (latch, reply) in group {
                // The worker-loop protocol: check each latch once at
                // formation, then send exactly one reply either way.
                let computed = latch.load(Ordering::Relaxed) == 0;
                reply.send(computed).expect("waiter alive");
            }
        });
        assert!(rx1.recv().expect("exactly one reply"), "uncancelled batch-mate always computes");
        // Either verdict is legal for the cancelled job (the store raced
        // the drain); the invariant is one reply, never zero.
        let _verdict = rx2.recv().expect("exactly one reply");
        canceller.join().unwrap();
        worker.join().unwrap();
    });
}

/// Two concurrent misses on one key: exactly one submission leads (and
/// computes); the other joins the flight or observes the resolved
/// answer through the under-lock re-check. All waiters receive the
/// answer on every schedule.
#[test]
fn inflight_exactly_one_leader_per_flight() {
    loom::model(|| {
        let table: Arc<InFlightTable<u32, u64>> = Arc::new(InFlightTable::new());
        let cache: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let leads = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let table = Arc::clone(&table);
                let cache = Arc::clone(&cache);
                let leads = Arc::clone(&leads);
                thread::spawn(move || {
                    let (tx, rx) = mpsc::channel();
                    match table.join_or_lead(9, tx, QuerySpan::default(), || *cache.lock().unwrap())
                    {
                        Submission::Leading => {
                            leads.fetch_add(1, Ordering::Relaxed);
                            // Cache insert happens-before entry removal —
                            // the ordering `submit`'s re-check relies on.
                            *cache.lock().unwrap() = Some(42);
                            table.resolve(&9, 42);
                            rx.recv().expect("leader is a registered waiter too")
                        }
                        Submission::Joined => rx.recv().expect("flight resolved"),
                        Submission::Resolved(v) => v,
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(leads.load(Ordering::Relaxed), 1, "two leaders for one key");
        assert!(table.is_empty(), "resolved flight left an entry behind");
    });
}

/// Evicting the cached answer while a flight is in progress must never
/// provoke a second *concurrent* compute: entry lifetime is independent
/// of the LRU, so the second submitter joins the live flight (or leads
/// a new one only after the first fully resolved).
#[test]
fn inflight_no_double_compute_on_evict_while_in_flight() {
    loom::model(|| {
        let table: Arc<InFlightTable<u32, u64>> = Arc::new(InFlightTable::new());
        let cache: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let computing = Arc::new(AtomicU64::new(0));
        let submit =
            |table: &InFlightTable<u32, u64>, cache: &Mutex<Option<u64>>, computing: &AtomicU64| {
                let (tx, rx) = mpsc::channel();
                match table.join_or_lead(3, tx, QuerySpan::default(), || *cache.lock().unwrap()) {
                    Submission::Leading => {
                        let concurrent = computing.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(concurrent, 0, "two computes in flight for one key");
                        *cache.lock().unwrap() = Some(5);
                        computing.fetch_sub(1, Ordering::Relaxed);
                        table.resolve(&3, 5);
                        rx.recv().unwrap()
                    }
                    Submission::Joined => rx.recv().unwrap(),
                    Submission::Resolved(v) => v,
                }
            };
        let t2 = Arc::clone(&table);
        let c2 = Arc::clone(&cache);
        let k2 = Arc::clone(&computing);
        let second = thread::spawn(move || submit(&t2, &c2, &k2));
        // The "evictor": clears the cached answer at an arbitrary point
        // relative to both submissions.
        let c3 = Arc::clone(&cache);
        let evictor = thread::spawn(move || {
            *c3.lock().unwrap() = None;
        });
        let first = submit(&table, &cache, &computing);
        assert_eq!(first, 5);
        assert_eq!(second.join().unwrap(), 5);
        evictor.join().unwrap();
    });
}

/// Register/retire-under-traffic on the copy-on-write snapshot: a
/// reader sees either the old or the new table (never a torn state),
/// and two concurrent registrations of one key admit exactly one.
#[test]
fn cow_map_register_retire_under_concurrent_reads() {
    loom::model(|| {
        let map: Arc<CowMap<u32, u64>> = Arc::new(CowMap::new());
        map.insert_if_absent(1, 10).unwrap();
        let m2 = Arc::clone(&map);
        let registrar = thread::spawn(move || m2.insert_if_absent(2, 20).is_ok());
        let m3 = Arc::clone(&map);
        let retirer = thread::spawn(move || m3.remove(&1).is_some());
        // Reader under churn: key 1 is live-or-retired, key 2 is
        // absent-or-registered, and each observed snapshot is internally
        // consistent (a clone of one published Arc).
        let snap = map.snapshot();
        assert!(matches!(snap.get(&1), None | Some(&10)));
        assert!(matches!(snap.get(&2), None | Some(&20)));
        assert!(registrar.join().unwrap(), "fresh key must register");
        assert!(retirer.join().unwrap(), "live key must retire");
        let end = map.snapshot();
        assert_eq!(end.get(&1), None);
        assert_eq!(end.get(&2), Some(&20));
    });
}

/// Two concurrent registrations of the *same* key: exactly one wins,
/// the loser gets its value handed back (the router drops the loser's
/// freshly started pool outside the lock).
#[test]
fn cow_map_duplicate_register_race_admits_one() {
    loom::model(|| {
        let map: Arc<CowMap<u32, u64>> = Arc::new(CowMap::new());
        let m2 = Arc::clone(&map);
        let other = thread::spawn(move || m2.insert_if_absent(7, 200).is_ok());
        let mine = map.insert_if_absent(7, 100).is_ok();
        let theirs = other.join().unwrap();
        assert!(
            mine ^ theirs,
            "exactly one of two racing registrations must win (mine={mine}, theirs={theirs})"
        );
        let winner = *map.snapshot().get(&7).expect("one registration committed");
        assert!(winner == 100 || winner == 200);
    });
}
