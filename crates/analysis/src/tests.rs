//! Fixture self-tests: every rule is pinned with a snippet it must catch
//! and a near-identical snippet it must pass. Fixtures are linted under
//! a `crates/service/src/` path so the path-scoped rules are active.

use super::*;

/// Lints `src` as if it lived in the serving crate's sources.
fn lint_service(src: &str) -> SourceReport {
    lint_source("crates/service/src/fixture.rs", src)
}

fn rules_of(report: &SourceReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// --- hot-path-no-alloc ------------------------------------------------------

#[test]
fn hot_path_catches_allocation() {
    let report = lint_service(
        "// lint: hot-path\n\
         fn push_loop(xs: &mut Vec<u32>) {\n\
             let scratch = Vec::new();\n\
             let boxed = Box::new(3);\n\
             xs.push(1);\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_HOT_PATH, RULE_HOT_PATH]);
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn hot_path_allows_reuse_and_ends_with_the_region() {
    let report = lint_service(
        "// lint: hot-path\n\
         fn push_loop(xs: &mut Vec<u32>) {\n\
             xs.push(1); // pushing into preallocated storage is fine\n\
         }\n\
         fn cold() {\n\
             let scratch = Vec::new(); // outside the marked region\n\
             drop(scratch);\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn hot_path_marker_in_doc_prose_is_inert() {
    let report = lint_service(
        "/// Mark hot regions with `// lint: hot-path` above the item.\n\
         fn docs_only() {\n\
             let v = Vec::new();\n\
             drop(v);\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn hot_path_lane_major_batch_kernel_is_clean() {
    // The batched-diffusion push pattern: lane-major indexing, a bit-scan
    // over the extraction mask, pushes into pre-sized workspace vectors
    // and `std::mem::take` of a scratch list — none of it allocates, so
    // the marked region must stay clean.
    let report = lint_service(
        "// lint: hot-path\n\
         fn push_lanes(ws: &mut Workspace, j: usize, em: u16, delta: &[f64]) {\n\
             let base = j * ws.stride;\n\
             let mut m = em;\n\
             while m != 0 {\n\
                 let l = m.trailing_zeros() as usize;\n\
                 m &= m - 1;\n\
                 ws.r[base + l] += delta[l];\n\
                 ws.touched.push(j as u32);\n\
             }\n\
             let nodes = std::mem::take(&mut ws.gamma_nodes);\n\
             ws.gamma_nodes = nodes;\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn hot_path_batch_kernel_allocating_per_push_is_flagged() {
    // The anti-pattern the lane-major layout exists to avoid: building a
    // fresh per-push lane buffer.
    let report = lint_service(
        "// lint: hot-path\n\
         fn push_lanes(ws: &mut Workspace, lanes: usize) {\n\
             let spread = vec![0.0f64; lanes];\n\
             ws.apply(&spread);\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_HOT_PATH]);
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn hot_path_simd_kernel_with_safety_doc_passes() {
    // The vectorized dense-lane kernel: a `# Safety`-documented
    // `target_feature` function inside a hot-path region, plus a
    // `// SAFETY:`-justified call site. Both rules must stay quiet.
    let report = lint_service(
        "/// 4-wide f64 lane block.\n\
         ///\n\
         /// # Safety\n\
         /// Caller checked AVX2 and `lanes % 4 == 0`.\n\
         // lint: hot-path\n\
         #[target_feature(enable = \"avx2\")]\n\
         unsafe fn dense_lanes(r: *mut f64, lanes: usize) {\n\
             let mut l = 0;\n\
             while l < lanes {\n\
                 *r.add(l) += 1.0;\n\
                 l += 4;\n\
             }\n\
         }\n\
         // lint: hot-path\n\
         fn caller(r: &mut [f64]) {\n\
             // SAFETY: AVX2 availability and stride checked by the caller.\n\
             unsafe { dense_lanes(r.as_mut_ptr(), r.len()) }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --- unsafe-requires-safety -------------------------------------------------

#[test]
fn unsafe_without_justification_is_flagged() {
    let report = lint_service("fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n");
    assert_eq!(rules_of(&report), vec![RULE_UNSAFE]);
    assert_eq!(report.findings[0].line, 2);
}

#[test]
fn unsafe_with_safety_comment_or_doc_section_passes() {
    let report = lint_service(
        "fn f(p: *const u32) -> u32 {\n\
             // SAFETY: caller guarantees `p` is valid and aligned.\n\
             unsafe { *p }\n\
         }\n\
         /// Reads a raw pointer.\n\
         ///\n\
         /// # Safety\n\
         /// `p` must be valid for reads.\n\
         unsafe fn g(p: *const u32) -> u32 {\n\
             *p\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unsafe_inside_a_string_literal_is_not_code() {
    let report = lint_service("fn f() -> &'static str {\n    \"unsafe { }\"\n}\n");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --- condvar-wait-in-loop ---------------------------------------------------

#[test]
fn condvar_wait_outside_loop_is_flagged() {
    let report = lint_service(
        "fn wait_once(m: &Mutex<bool>, cv: &Condvar) {\n\
             let guard = m.lock().expect(\"poisoned\");\n\
             let _guard = cv.wait(guard).expect(\"poisoned\");\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_CONDVAR]);
}

#[test]
fn condvar_wait_in_predicate_loop_passes() {
    let report = lint_service(
        "fn wait_ready(m: &Mutex<bool>, cv: &Condvar) {\n\
             let mut guard = m.lock().expect(\"poisoned\");\n\
             while !*guard {\n\
                 guard = cv.wait(guard).expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn handle_wait_without_guard_argument_is_not_a_condvar() {
    let report = lint_service("fn resolve(h: QueryHandle) -> QueryResult {\n    h.wait()\n}\n");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --- lock-acquisition-order -------------------------------------------------

#[test]
fn upward_lock_acquisition_is_flagged() {
    // cache-shard (3) held, then queue-state (1): upward — a deadlock
    // partner for any thread doing the declared 1 → 3 order.
    let report = lint_service(
        "impl ShardedCache {\n\
             fn bad(&self, q: &JobQueue) {\n\
                 let shard = self.shard(0).lock().expect(\"poisoned\");\n\
                 let state = q.state.lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_LOCK_ORDER]);
    assert!(report.findings[0].message.contains("cache-shard"), "{}", report.findings[0].message);
}

#[test]
fn downward_acquisition_follows_the_hierarchy() {
    // inflight-shard (2) then cache-shard (3): the join_or_lead re-check
    // edge, explicitly legal.
    let report = lint_service(
        "impl InFlightTable {\n\
             fn recheck(&self, cache: &ShardedCache) {\n\
                 let shard = self.shard(0).lock().expect(\"poisoned\");\n\
                 let cache_shard = cache.shard(0).lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    // Both classify as inflight-shard inside `impl InFlightTable` — the
    // same-receiver limitation is documented; use a distinct impl to pin
    // the downward direction instead.
    let report2 = lint_service(
        "impl JobQueue {\n\
             fn drain_into(&self, cache: &ShardedCache) {\n\
                 let state = self.state.lock().expect(\"poisoned\");\n\
                 let shard = cache.shard(0).lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert!(report2.findings.is_empty(), "{:?}", report2.findings);
    drop(report);
}

#[test]
fn dropped_guard_releases_its_level() {
    let report = lint_service(
        "impl ShardedCache {\n\
             fn sequential(&self, q: &JobQueue) {\n\
                 let shard = self.shard(0).lock().expect(\"poisoned\");\n\
                 drop(shard);\n\
                 let state = q.state.lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn scope_exit_releases_guards() {
    let report = lint_service(
        "impl ShardedCache {\n\
             fn scoped(&self, q: &JobQueue) {\n\
                 {\n\
                     let shard = self.shard(0).lock().expect(\"poisoned\");\n\
                 }\n\
                 let state = q.state.lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn temporary_guards_do_not_count_as_held() {
    // `.lock()` in an expression position releases at end of statement.
    let report = lint_service(
        "impl ShardedCache {\n\
             fn len(&self, q: &JobQueue) -> usize {\n\
                 self.shard(0).lock().expect(\"poisoned\").len();\n\
                 q.state.lock().expect(\"poisoned\").jobs.len()\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn archive_then_shard_is_an_upward_violation() {
    // telemetry-archive (4) held, then cache-shard (3): upward — the
    // router's `telemetry()` must finish its stats walk (which locks
    // cache shards) before touching the retired-route archive.
    let report = lint_service(
        "impl ServiceRouter {\n\
             fn bad(&self, cache: &ShardedCache) {\n\
                 let archive = self.archive.lock().expect(\"poisoned\");\n\
                 let shard = cache.shard(0).lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_LOCK_ORDER]);
    assert!(
        report.findings[0].message.contains("telemetry-archive"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn shard_then_archive_follows_the_hierarchy() {
    // cache-shard (3) then telemetry-archive (4): the telemetry() edge —
    // snapshot live stats, then fold in archived routes. Explicitly legal.
    let report = lint_service(
        "impl ServiceRouter {\n\
             fn telemetry_edge(&self, cache: &ShardedCache) {\n\
                 let shard = cache.shard(0).lock().expect(\"poisoned\");\n\
                 let archive = self.archive.lock().expect(\"poisoned\");\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn span_ring_record_is_hot_path_clean() {
    // The flight-recorder finish sequence — histogram bump plus ring
    // record — must stay legal inside a `hot-path` region with zero
    // suppressions: both structures are preallocated at startup.
    let report = lint_service(
        "// lint: hot-path\n\
         fn finish(ring: &SpanRing, hist: &LogHistogram, span: &QuerySpan) {\n\
             hist.record(span.total_ns());\n\
             ring.record(span);\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 0);
}

// --- relaxed-ordering-justified ---------------------------------------------

#[test]
fn unjustified_relaxed_load_is_flagged() {
    let report =
        lint_service("fn read(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n");
    assert_eq!(rules_of(&report), vec![RULE_RELAXED]);
}

#[test]
fn monotonic_rmw_and_noted_relaxed_pass() {
    let report = lint_service(
        "fn bump(c: &AtomicU64) {\n\
             c.fetch_add(1, Ordering::Relaxed);\n\
         }\n\
         fn snapshot(c: &Counters) -> Stats {\n\
             // ordering: advisory telemetry; fields need not be mutually\n\
             // consistent, only individually atomic.\n\
             Stats {\n\
                 hits: c.hits.load(Ordering::Relaxed),\n\
                 misses: c.misses.load(Ordering::Relaxed),\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn ordering_note_expires_with_its_scope() {
    let report = lint_service(
        "fn noted(c: &AtomicU64) -> u64 {\n\
             // ordering: scoped justification\n\
             c.load(Ordering::Relaxed)\n\
         }\n\
         fn unnoted(c: &AtomicU64) -> u64 {\n\
             c.load(Ordering::Relaxed)\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_RELAXED]);
    assert_eq!(report.findings[0].line, 6);
}

// --- no-bare-unwrap ---------------------------------------------------------

#[test]
fn bare_unwrap_is_flagged_in_service_sources_only() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_of(&lint_service(src)), vec![RULE_UNWRAP]);
    let elsewhere = lint_source("crates/diffusion/src/fixture.rs", src);
    assert!(elsewhere.findings.is_empty(), "{:?}", elsewhere.findings);
}

#[test]
fn persist_sources_are_inside_the_unwrap_scope_but_not_the_lock_rules() {
    // `crates/persist/src` joins the no-bare-unwrap scope (a loader that
    // panics on malformed input defeats its fail-closed contract), but
    // the service-only concurrency rules must not follow: persistence
    // has no condvars or lock hierarchy.
    let unwrap_src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    for path in ["crates/persist/src/format.rs", "crates/persist/src/store.rs"] {
        let report = lint_source(path, unwrap_src);
        assert_eq!(rules_of(&report), vec![RULE_UNWRAP], "{path} not in unwrap scope");
    }
    // `.wait(guard)` outside a loop: flagged in service, not in persist.
    let wait_src = "fn g(cv: &Condvar, m: MutexGuard<u32>) {\n    cv.wait(m);\n}\n";
    assert_eq!(rules_of(&lint_service(wait_src)), vec![RULE_CONDVAR]);
    let persist = lint_source("crates/persist/src/store.rs", wait_src);
    assert!(persist.findings.is_empty(), "{:?}", persist.findings);
    // Test regions inside persist sources keep their unwrap allowance.
    let test_src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
    let report = lint_source("crates/persist/src/format.rs", test_src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn overload_modules_are_inside_the_strict_scope() {
    // The overload-hardening modules (PR 7) must stay under the serving
    // crate's strictest rules. Pinned per-path so a future move out of
    // `crates/service/src/` cannot silently drop them from scope.
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    for path in ["crates/service/src/admission.rs", "crates/service/src/fault.rs"] {
        let report = lint_source(path, src);
        assert_eq!(rules_of(&report), vec![RULE_UNWRAP], "{path} fell out of lint scope");
    }
}

#[test]
fn cfg_gated_fault_code_is_still_scanned() {
    // The lint is textual: `#[cfg(laca_fault_inject)]` bodies are scanned
    // even though default builds compile them out — fault hooks get no
    // free pass on unwraps.
    let report = lint_source(
        "crates/service/src/fault.rs",
        "#[cfg(laca_fault_inject)]\n\
         fn inject(x: Option<u32>) -> u32 {\n\
             x.unwrap()\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_UNWRAP]);
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn unwrap_variants_and_test_code_pass() {
    let report = lint_service(
        "fn f(m: &Mutex<u32>) -> u32 {\n\
             *m.lock().unwrap_or_else(PoisonError::into_inner)\n\
         }\n\
         fn g(x: Option<u32>) -> u32 {\n\
             x.unwrap_or(0)\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn h(x: Option<u32>) -> u32 {\n\
                 x.unwrap()\n\
             }\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn doc_comment_unwrap_is_not_code() {
    let report = lint_service("/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --- suppression + engine plumbing ------------------------------------------

#[test]
fn allow_marker_suppresses_and_is_counted() {
    let report = lint_service(
        "fn f(x: Option<u32>) -> u32 {\n\
             // lint: allow(no-bare-unwrap)\n\
             x.unwrap()\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn allow_marker_covers_only_one_line() {
    let report = lint_service(
        "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n\
             // lint: allow(no-bare-unwrap)\n\
             x.unwrap();\n\
             y.unwrap()\n\
         }\n",
    );
    assert_eq!(rules_of(&report), vec![RULE_UNWRAP]);
    assert_eq!(report.findings[0].line, 4);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn block_comments_and_raw_strings_are_stripped() {
    let report = lint_service(
        "fn f() -> &'static str {\n\
             /* unsafe { } spans\n\
                multiple lines */\n\
             r#\"unsafe { .unwrap() }\"#\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn finding_display_is_path_line_rule() {
    let report = lint_service("fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    let rendered = report.findings[0].to_string();
    assert!(
        rendered.starts_with("crates/service/src/fixture.rs:2: [no-bare-unwrap]"),
        "{rendered}"
    );
}
