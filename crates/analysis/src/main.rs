//! `laca-lint` — runs the workspace lint rules over `crates/` and
//! `vendor/` and exits non-zero on any finding *or* any suppression
//! (this workspace is kept at zero of both).
//!
//! Usage: `cargo run -p laca-analysis -- [workspace-root]`
//!
//! The root defaults to the nearest ancestor of the current directory
//! (or of `CARGO_MANIFEST_DIR` when run under cargo) whose `Cargo.toml`
//! declares `[workspace]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: Option<&Path> = Some(&start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("laca-lint: no workspace root found (pass one explicitly)");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match laca_analysis::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("laca-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "laca-lint: {} file(s), {} finding(s), {} suppression(s)",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if report.findings.is_empty() && report.suppressed == 0 {
        ExitCode::SUCCESS
    } else {
        if report.suppressed > 0 {
            eprintln!(
                "laca-lint: suppressions are not allowed in this workspace; fix the code instead"
            );
        }
        ExitCode::FAILURE
    }
}
