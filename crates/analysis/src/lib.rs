//! # `laca-analysis` — the workspace lint engine
//!
//! A lightweight, line/token-level static analyzer for the rules this
//! codebase actually depends on but `rustc`/`clippy` cannot express:
//!
//! | rule | scope | requirement |
//! |---|---|---|
//! | `hot-path-no-alloc` | `// lint: hot-path` regions | no `Vec::new` / `vec!` / `Box::new` / `format!` / `HashMap` |
//! | `unsafe-requires-safety` | whole workspace | every `unsafe` carries a `// SAFETY:` or `# Safety` justification |
//! | `condvar-wait-in-loop` | `crates/service` | every `Condvar::wait` sits inside a `loop`/`while` re-checking its predicate |
//! | `lock-acquisition-order` | `crates/service` | nested lock acquisitions follow the declared hierarchy |
//! | `relaxed-ordering-justified` | non-test code | `Ordering::Relaxed` outside monotonic RMW counters carries an `// ordering:` note |
//! | `no-bare-unwrap` | `crates/{service,persist}/src` non-test | no `.unwrap()`; use typed errors or `expect` with the invariant |
//!
//! The scanner is deliberately **not** a full parser (no `syn` — the
//! workspace builds offline): it splits each line into code and comment
//! parts with a small state machine that understands block comments,
//! strings, raw strings and char literals, then tracks brace-scoped
//! regions (test modules, `impl` blocks, loops, marked hot paths) to give
//! every rule just enough context. The trade-off is documented per rule;
//! fixture self-tests in this crate pin both the catches and the
//! non-catches.
//!
//! ## Region markers
//!
//! * `// lint: hot-path` — the next braced item (typically a function) is
//!   a steady-state hot path; the allocation rule applies to its whole
//!   lexical body.
//! * `// ordering: <why>` — justifies `Ordering::Relaxed` from here to
//!   the end of the enclosing block.
//! * `// lint: allow(<rule>)` — suppresses `<rule>` on the next line (or
//!   the same line). The `laca-lint` binary reports suppression counts
//!   and fails when any exist, so this is an escape hatch for
//!   *downstream* users of the engine, not for this workspace.
//!
//! ## Lock hierarchy
//!
//! The serving stack's declared order (acquire strictly downward, never
//! up or sideways while holding):
//!
//! 1. `routes` — the router's copy-on-write table (`CowMap`);
//! 2. `queue-state` — the bounded submission queue's mutex;
//! 3. `inflight-shard` — a single-flight table shard;
//! 4. `cache-shard` — a result-cache LRU shard;
//! 5. `telemetry-archive` — the router's retired-route stats archive.
//!
//! (`InFlightTable::join_or_lead` holding its shard while re-checking the
//! cache is the motivating edge: 3 → 4 is downward, hence legal. The
//! archive sits last: `ServiceRouter::telemetry` snapshots a route's
//! stats — which walks cache shards — before locking the archive, so the
//! archive must never be held while touching anything above it.)

use std::fmt;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to [`lint_source`] (repo-relative in the binary).
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Result of linting one source file.
#[derive(Debug, Default)]
pub struct SourceReport {
    /// Violations, in line order.
    pub findings: Vec<Finding>,
    /// Findings silenced by `// lint: allow(...)` markers.
    pub suppressed: usize,
}

pub const RULE_HOT_PATH: &str = "hot-path-no-alloc";
pub const RULE_UNSAFE: &str = "unsafe-requires-safety";
pub const RULE_CONDVAR: &str = "condvar-wait-in-loop";
pub const RULE_LOCK_ORDER: &str = "lock-acquisition-order";
pub const RULE_RELAXED: &str = "relaxed-ordering-justified";
pub const RULE_UNWRAP: &str = "no-bare-unwrap";

/// Every rule identifier, for help output and allow-marker validation.
pub const ALL_RULES: [&str; 6] =
    [RULE_HOT_PATH, RULE_UNSAFE, RULE_CONDVAR, RULE_LOCK_ORDER, RULE_RELAXED, RULE_UNWRAP];

// ---------------------------------------------------------------------------
// Pass 1: split every line into its code and comment parts.
// ---------------------------------------------------------------------------

/// A physical source line after comment/string stripping.
#[derive(Debug, Default, Clone)]
struct LineParts {
    /// Code with comments removed and string/char contents blanked (the
    /// delimiters remain, so `"{"` contributes no brace but `code` stays
    /// aligned enough for substring checks).
    code: String,
    /// Concatenated comment text on the line (line or block, without the
    /// `//`/`/*` markers).
    comment: String,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    /// Inside a (possibly nested) block comment, with nesting depth.
    Block(u32),
    /// Inside a normal `"` string.
    Str,
    /// Inside a raw string terminated by `"` + this many `#`s.
    RawStr(u32),
}

fn split_lines(source: &str) -> Vec<LineParts> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in source.lines() {
        let mut parts = LineParts::default();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state =
                            if depth == 1 { LexState::Code } else { LexState::Block(depth - 1) };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        parts.comment.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped char (incl. `\"`)
                    } else if c == '"' {
                        parts.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' {
                        let mut n = 0;
                        while n < hashes && bytes.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            parts.code.push('"');
                            state = LexState::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Code => {
                    if c == '/' && next == Some('/') {
                        // Line comment: `//`, `///`, `//!` all end the code.
                        parts.comment.push_str(&raw[char_offset(raw, i + 2)..]);
                        i = bytes.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        parts.code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
                        // `r"`, `r#"`, `br"`, ... — skip prefix + hashes.
                        let mut j = i + 1;
                        if bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        parts.code.push('"');
                        state = LexState::RawStr(hashes);
                        i = j + 1;
                    } else if c == '\'' {
                        // Char literal vs lifetime: `'x'` / `'\n'` are
                        // literals, `'a` (no closing quote) is a lifetime.
                        if next == Some('\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            i += 3;
                        } else {
                            i += 1; // lifetime tick; identifier follows as code
                        }
                    } else {
                        parts.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(parts);
    }
    out
}

/// Byte offset of the `idx`-th char in `s` (lines are short; O(n) is fine).
fn char_offset(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(o, _)| o).unwrap_or(s.len())
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Not part of an identifier like `for` or `br`-named variables.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    if bytes[i] == 'b' {
        if bytes.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// `true` when `needle` occurs in `hay` delimited by non-identifier chars
/// (so `unsafe` does not match `unsafe_marker`).
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Pass 2: brace-scoped region tracking + the rules.
// ---------------------------------------------------------------------------

/// Why a brace scope was opened, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    /// `#[cfg(test)]`-gated region (or `#[cfg(all(test, ...))]`).
    Test,
    /// Region under a `// lint: hot-path` marker.
    HotPath,
    /// `loop` / `while` / `for` body.
    Loop,
    /// Plain braces (functions, modules, blocks, literals, ...).
    Plain,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// `impl` type name this scope belongs to, when it opened one.
    impl_name: Option<String>,
}

/// A lock guard bound by `let`, alive until its scope closes or it is
/// explicitly `drop`ped.
#[derive(Debug)]
struct HeldGuard {
    name: String,
    level: u8,
    label: &'static str,
    /// Scope-stack depth at binding time; popped when the stack shrinks
    /// below it.
    depth: usize,
    line: usize,
}

/// The declared lock hierarchy for `crates/service` (see module docs).
/// Returns `(level, label)` for a recognizable acquisition receiver.
fn classify_lock(impl_name: Option<&str>, receiver: &str) -> Option<(u8, &'static str)> {
    if receiver.contains("routes") || (impl_name == Some("CowMap") && receiver.contains("inner")) {
        Some((0, "routes"))
    } else if receiver.contains("state") {
        Some((1, "queue-state"))
    } else if receiver.contains("shard") {
        if impl_name == Some("InFlightTable") {
            Some((2, "inflight-shard"))
        } else {
            Some((3, "cache-shard"))
        }
    } else if receiver.contains("archive") {
        Some((4, "telemetry-archive"))
    } else {
        None
    }
}

/// Whether a path is part of the serving crate's non-test sources (where
/// the strictest rules apply).
fn is_service_src(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("crates/service/src/")
}

/// Non-test sources where bare `.unwrap()` is banned: the serving crate
/// plus the persistence crate — a loader that panics on malformed input
/// would defeat `laca-persist`'s fail-closed typed-error contract. The
/// concurrency rules (condvar/lock-order) stay service-only; persistence
/// has no locks to order.
fn is_no_unwrap_src(path: &str) -> bool {
    let p = path.replace('\\', "/");
    is_service_src(path) || p.contains("crates/persist/src/")
}

/// Test-ish files: integration test dirs and `*_tests.rs` modules (the
/// model-check suite). `#[cfg(test)]` regions are tracked separately.
fn is_test_file(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("/tests/") || p.ends_with("_tests.rs") || p.ends_with("/tests.rs")
}

/// Lints one file's source text. `path` scopes the path-dependent rules
/// and is echoed into findings; it does not need to exist on disk.
pub fn lint_source(path: &str, source: &str) -> SourceReport {
    let lines = split_lines(source);
    let mut report = SourceReport::default();
    let service_src = is_service_src(path);
    let no_unwrap_src = is_no_unwrap_src(path);
    let test_file = is_test_file(path);

    let mut scopes: Vec<Scope> = Vec::new();
    let mut guards: Vec<HeldGuard> = Vec::new();
    // Depths at which an `// ordering:` justification is active.
    let mut ordering_marks: Vec<usize> = Vec::new();
    let mut pending: Vec<ScopeKind> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // Rules suppressed for the next code line by `// lint: allow(...)`.
    let mut pending_allows: Vec<String> = Vec::new();

    for (idx, parts) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = parts.code.trim();
        let comment = parts.comment.trim();

        // --- marker comments ------------------------------------------------
        // Markers must *lead* the comment (doc prose quoting `// lint:
        // hot-path` in backticks, like this file's own docs, is not a
        // marker).
        let marker = comment.trim_start_matches(['/', '!', '*', ' ']);
        if marker.starts_with("lint: hot-path") {
            pending.push(ScopeKind::HotPath);
        }
        if marker.starts_with("ordering:") {
            ordering_marks.push(scopes.len());
        }
        let mut line_allows: Vec<String> = std::mem::take(&mut pending_allows);
        if let Some(rest) = marker.strip_prefix("lint: allow(") {
            if let Some(end) = rest.find(')') {
                let rule = rest[..end].trim().to_string();
                if code.is_empty() {
                    pending_allows.push(rule); // applies to the next code line
                } else {
                    line_allows.push(rule); // same-line suppression
                }
            }
        }

        // --- pending region headers -----------------------------------------
        if code.starts_with("#[cfg(test)") || code.starts_with("#[cfg(all(test") {
            pending.push(ScopeKind::Test);
        }
        let impl_header = has_word(code, "impl").then(|| extract_impl_name(code)).flatten();
        if let Some(name) = impl_header {
            // `impl Trait for Type` must not double as a `for`-loop header.
            pending_impl = Some(name);
        } else if has_word(code, "loop") || has_word(code, "while") || has_word(code, "for") {
            pending.push(ScopeKind::Loop);
        }

        let in_test = test_file || scopes.iter().any(|s| s.kind == ScopeKind::Test);
        let in_hot = scopes.iter().any(|s| s.kind == ScopeKind::HotPath);
        let in_loop = scopes.iter().any(|s| s.kind == ScopeKind::Loop);
        let impl_name =
            scopes.iter().rev().find_map(|s| s.impl_name.as_deref()).map(str::to_string);

        // --- rules -----------------------------------------------------------
        let emit = |rule: &'static str, message: String, report: &mut SourceReport| {
            if line_allows.iter().any(|a| a == rule) {
                report.suppressed += 1;
            } else {
                report.findings.push(Finding {
                    path: path.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if in_hot && !in_test {
            for token in ["Vec::new", "vec!", "Box::new", "format!", "HashMap"] {
                if code.contains(token) {
                    emit(
                        RULE_HOT_PATH,
                        format!(
                            "`{token}` inside a `// lint: hot-path` region; allocate in the workspace instead"
                        ),
                        &mut report,
                    );
                }
            }
        }

        if has_word(code, "unsafe") {
            let justified = comment.contains("SAFETY:")
                || preceding_comment_block(&lines, idx)
                    .is_some_and(|c| c.contains("SAFETY:") || c.contains("# Safety"));
            if !justified {
                emit(
                    RULE_UNSAFE,
                    "`unsafe` without a `// SAFETY:` comment or `# Safety` doc section".into(),
                    &mut report,
                );
            }
        }

        if service_src && !in_test {
            // Condvar waits: `.wait(guard)` — an argument distinguishes them
            // from `QueryHandle::wait()`.
            if let Some(pos) = code.find(".wait(") {
                let arg = code[pos + 6..].trim_start();
                if !arg.starts_with(')') && !in_loop {
                    emit(
                        RULE_CONDVAR,
                        "`Condvar::wait` outside a predicate re-check loop (wakeups can be spurious or raced away)"
                            .into(),
                        &mut report,
                    );
                }
            }

            // Lock hierarchy: classify this line's acquisition, if any.
            if let Some((level, label)) = find_acquisition(code, impl_name.as_deref()) {
                for held in &guards {
                    if held.level >= level {
                        emit(
                            RULE_LOCK_ORDER,
                            format!(
                                "acquires `{label}` (level {level}) while holding `{}` (level {}, bound line {}); the declared order is routes < queue-state < inflight-shard < cache-shard < telemetry-archive",
                                held.label, held.level, held.line
                            ),
                            &mut report,
                        );
                    }
                }
                if let Some(name) = let_binding_name(code, &lines, idx) {
                    guards.push(HeldGuard {
                        name,
                        level,
                        label,
                        depth: scopes.len(),
                        line: lineno,
                    });
                }
            }
            // Explicit early release.
            if let Some(dropped) = code.strip_prefix("drop(").and_then(|r| r.strip_suffix(");")) {
                guards.retain(|g| g.name != dropped.trim());
            }
        }

        if no_unwrap_src && !in_test && code.contains(".unwrap()") {
            emit(
                RULE_UNWRAP,
                "bare `.unwrap()`; return a typed error or use `expect` naming the invariant"
                    .into(),
                &mut report,
            );
        }

        if !in_test && code.contains("Ordering::Relaxed") {
            let monotonic = code.contains(".fetch_add(") || code.contains(".fetch_sub(");
            let justified = comment.contains("ordering:") || !ordering_marks.is_empty();
            if !monotonic && !justified {
                emit(
                    RULE_RELAXED,
                    "`Ordering::Relaxed` outside a monotonic counter RMW needs an `// ordering:` note"
                        .into(),
                    &mut report,
                );
            }
        }

        // --- brace tracking (after rules: a line's own `{` opens *after*
        // its content is judged in the enclosing scope) ----------------------
        for c in parts.code.chars() {
            match c {
                '{' => {
                    let kind = pick_pending(&mut pending);
                    scopes.push(Scope { kind, impl_name: pending_impl.take() });
                }
                '}' => {
                    scopes.pop();
                    let depth = scopes.len();
                    guards.retain(|g| g.depth <= depth);
                    ordering_marks.retain(|&d| d <= depth);
                }
                _ => {}
            }
        }
        // Header pendings don't survive a statement terminator at scope
        // level (e.g. `#[cfg(test)] use x;`).
        if code.ends_with(';') {
            pending.clear();
            pending_impl = None;
        }
    }
    report
}

/// Consumes the strongest pending kind for a freshly opened brace.
fn pick_pending(pending: &mut Vec<ScopeKind>) -> ScopeKind {
    let kind = if pending.contains(&ScopeKind::Test) {
        ScopeKind::Test
    } else if pending.contains(&ScopeKind::HotPath) {
        ScopeKind::HotPath
    } else if pending.contains(&ScopeKind::Loop) {
        ScopeKind::Loop
    } else {
        ScopeKind::Plain
    };
    pending.clear();
    kind
}

/// `impl Type {` / `impl<G> Trait for Type<G> {` → the implemented-on
/// type's name (the identifier after `for` when present, else the first
/// after the generics).
fn extract_impl_name(code: &str) -> Option<String> {
    let rest = code.strip_prefix("impl")?;
    let rest = skip_generics(rest);
    let target = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let name: String =
        target.trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn skip_generics(s: &str) -> &str {
    let s = s.trim_start();
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// The contiguous comment/attribute block directly above line `idx`, as
/// one string (used for `SAFETY:` / `# Safety` justification lookup).
fn preceding_comment_block(lines: &[LineParts], idx: usize) -> Option<String> {
    let mut collected = String::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        let comment = lines[i].comment.trim();
        if !comment.is_empty() && code.is_empty() {
            collected.push_str(comment);
            collected.push('\n');
        } else if code.starts_with("#[") && code.ends_with(']') {
            continue; // attributes don't break the block
        } else {
            break;
        }
    }
    if collected.is_empty() {
        None
    } else {
        Some(collected)
    }
}

/// Detects a lock acquisition on `code` and classifies it against the
/// hierarchy, returning `(level, label)`.
fn find_acquisition(code: &str, impl_name: Option<&str>) -> Option<(u8, &'static str)> {
    for method in [".lock(", ".read(", ".write("] {
        if let Some(pos) = code.find(method) {
            let receiver = receiver_before(code, pos);
            if let Some(classified) = classify_lock(impl_name, receiver) {
                return Some(classified);
            }
        }
    }
    None
}

/// The expression chain immediately before byte `pos` (e.g.
/// `self.shard(&key)` for `self.shard(&key).lock()`).
fn receiver_before(code: &str, pos: usize) -> &str {
    let head = &code[..pos];
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || "_.()&[]:".contains(c)))
        .map(|p| p + 1)
        .unwrap_or(0);
    &head[start..]
}

/// If this acquisition is bound by `let`, its binding name — looking at
/// this line and, for rustfmt-wrapped `let x =\n    expr...`, the
/// previous code line.
fn let_binding_name(code: &str, lines: &[LineParts], idx: usize) -> Option<String> {
    let line_with_let = if code.trim_start().starts_with("let ") {
        code
    } else {
        // Walk back over blank/comment-only lines to the previous code line.
        let mut i = idx;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            let prev = lines[i].code.trim();
            if !prev.is_empty() {
                if prev.starts_with("let ") && prev.ends_with('=') {
                    break lines[i].code.as_str();
                }
                return None;
            }
        }
    };
    let after_let = line_with_let.trim_start().strip_prefix("let ")?;
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
    let name: String = after_mut.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

// ---------------------------------------------------------------------------
// Workspace driver.
// ---------------------------------------------------------------------------

/// Aggregate result of [`lint_workspace`].
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All findings across all scanned files, in path/line order.
    pub findings: Vec<Finding>,
    /// Total `// lint: allow(...)` suppressions in effect.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Recursively lints every `.rs` file under `<root>/crates` and
/// `<root>/vendor` (skipping `target/`). `root` is the workspace root.
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut report = WorkspaceReport::default();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        let one = lint_source(&rel, &source);
        report.findings.extend(one.findings);
        report.suppressed += one.suppressed;
        report.files += 1;
    }
    Ok(report)
}

fn collect_rs_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests;
