//! Multi-index routing benchmark for `laca-service`'s [`ServiceRouter`]:
//! throughput with 1 vs 3 registered indices (cold and warm), plus the
//! single-flight coalescing path under bursty identical misses.
//!
//! Substrate: cora-like (n ≈ 2.7k) with three param-distinct routes over
//! the same dataset — `ε = 1e-4`, `ε = 1e-3`, and `ε = 1e-4` without the
//! SNAS — the "many parameterizations served side by side" shape the
//! user-preference variants imply. Scenarios:
//!
//! * **cold** — per-route caches off; a fixed batch round-robins across
//!   `k` routes. The claim under test: routing adds one snapshot probe
//!   per submission, never a serialization point — `cold/k3` comes out
//!   *faster* per batch than `cold/k1` here because two of the three
//!   routes run cheaper parameterizations, which is exactly the
//!   multi-tenant shape the router exists to serve.
//! * **warm** — per-route caches on; the same uniform workload over
//!   `(route, seed)` pairs answered from the per-route caches.
//! * **coalesce/burst** — every iteration submits a *fresh* seed from
//!   `FAN` handles back-to-back through one route: one leads the flight,
//!   the rest must coalesce. The derived `coalesce/*` entries assert the
//!   economics (computes ≈ bursts, not bursts × FAN).
//!
//! Writes `BENCH_routing.json` at the repo root (override with
//! `BENCH_ROUTING_JSON`); the committed copy is the baseline the CI perf
//! gate diffs against.

use criterion::Criterion;
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_graph::datasets::cora_like;
use laca_graph::NodeId;
use laca_service::{ClusterIndex, RouteKey, ServiceConfig, ServiceRouter, ServiceStats};

/// Workers per registered route (the container is small; routing overhead
/// and coalescing — not compute scaling — are the subject here).
const ROUTE_WORKERS: usize = 1;
/// Queries per timed cold/warm batch (split across the routes in play).
const BATCH: usize = 96;
/// Handles submitted back-to-back per fresh key in the coalescing burst.
const FAN: usize = 8;
/// Fresh keys per coalescing iteration.
const BURST_KEYS: usize = 8;

fn build_routes() -> Vec<ClusterIndex> {
    let ds = cora_like().generate("cora").unwrap();
    let tnam_config = TnamConfig::new(16, MetricFn::Cosine);
    vec![
        ClusterIndex::from_dataset(&ds, &tnam_config, LacaParams::new(1e-4)).unwrap(),
        ClusterIndex::from_dataset(&ds, &tnam_config, LacaParams::new(1e-3)).unwrap(),
        ClusterIndex::from_dataset(&ds, &tnam_config, LacaParams::new(1e-4).without_snas())
            .unwrap(),
    ]
}

fn config(cache_per_worker: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(ROUTE_WORKERS)
        .with_cache_per_worker(cache_per_worker)
        .with_queue_capacity(256)
}

/// A router serving the first `k` of `indices`.
fn router_with(
    indices: &[ClusterIndex],
    k: usize,
    cache_per_worker: usize,
) -> (ServiceRouter, Vec<RouteKey>) {
    let router = ServiceRouter::new();
    let keys = indices
        .iter()
        .take(k)
        .map(|idx| router.register(idx.clone(), config(cache_per_worker)).unwrap())
        .collect();
    (router, keys)
}

/// Submits `BATCH` queries round-robin across `keys`, then waits for all.
fn run_round_robin(router: &ServiceRouter, keys: &[RouteKey], n: usize) {
    let handles: Vec<_> = (0..BATCH)
        .map(|i| {
            let seed = ((i * 131) % n) as NodeId;
            router.submit(&keys[i % keys.len()], seed).expect("route vanished")
        })
        .collect();
    for h in handles {
        criterion::black_box(h.wait().expect("routed query failed").rho.support_size());
    }
}

fn main() {
    eprintln!("[routing bench] building 3 cora-like indices (TNAM k=16)...");
    let indices = build_routes();
    let n = indices[0].n();
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("routing");

    // Cold: same batch size whether 1 or 3 routes serve it. The k3 leg
    // pays 3× the service objects, not 3× per-query cost.
    for k in [1usize, 3] {
        let (router, keys) = router_with(&indices, k, 0);
        group.bench_function(format!("cold/k{k}"), |b| {
            b.iter(|| run_round_robin(&router, &keys, n))
        });
    }

    // Warm: per-route caches sized to hold the whole working set.
    let warm_telemetry: ServiceStats;
    {
        let (router, keys) = router_with(&indices, 3, BATCH);
        run_round_robin(&router, &keys, n); // fill the caches, untimed
        let before = router.aggregate_stats();
        group.bench_function("warm/k3", |b| b.iter(|| run_round_robin(&router, &keys, n)));
        warm_telemetry = router.aggregate_stats().delta_since(&before);
    }

    // Coalescing burst: FAN submissions per fresh key; exactly one may
    // compute. `next` advances so every iteration's keys are cold.
    let coalesce_telemetry: ServiceStats;
    {
        let (router, keys) = router_with(&indices, 1, 4096);
        let service = router.route(&keys[0]).expect("route vanished");
        let mut next = 0usize;
        router.reset_stats();
        group.bench_function(format!("coalesce/fan{FAN}"), |b| {
            b.iter(|| {
                let mut handles = Vec::with_capacity(BURST_KEYS * FAN);
                for _ in 0..BURST_KEYS {
                    let seed = ((next * 17) % n) as NodeId;
                    next += 1;
                    for _ in 0..FAN {
                        handles.push(service.submit(seed));
                    }
                }
                for h in handles {
                    criterion::black_box(h.wait().expect("burst query failed").rho.support_size());
                }
            })
        });
        coalesce_telemetry = router.aggregate_stats();
    }
    group.finish();

    let results = criterion::take_results();
    let tmin_of = |label: &str| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    for k in [1usize, 3] {
        if let Some(ns) = tmin_of(&format!("routing/cold/k{k}")) {
            derived.push((format!("qps/cold/k{k}"), BATCH as f64 / (ns * 1e-9)));
        }
    }
    if let Some(ns) = tmin_of("routing/warm/k3") {
        derived.push(("qps/warm/k3".to_string(), BATCH as f64 / (ns * 1e-9)));
    }
    if let (Some(c1), Some(c3)) = (tmin_of("routing/cold/k1"), tmin_of("routing/cold/k3")) {
        // ≤1.0 when routing does not serialize the multi-index path
        // (below 1.0 here: 2 of the 3 routes run cheaper params).
        derived.push(("overhead/cold_k3_over_k1".to_string(), c3 / c1));
    }
    derived.push(("warm/hit_rate".to_string(), warm_telemetry.hit_rate()));
    derived.push(("warm/computed".to_string(), warm_telemetry.completed as f64));
    let submissions = (coalesce_telemetry.cache_hits
        + coalesce_telemetry.cache_misses
        + coalesce_telemetry.coalesced) as f64;
    derived.push(("coalesce/submissions".to_string(), submissions));
    derived.push(("coalesce/computed".to_string(), coalesce_telemetry.completed as f64));
    derived.push(("coalesce/coalesced".to_string(), coalesce_telemetry.coalesced as f64));
    // Fraction of burst submissions that did NOT pay a compute; with a
    // fan of FAN identical submissions per key the ceiling is 1 - 1/FAN.
    derived.push((
        "coalesce/saved_fraction".to_string(),
        if submissions > 0.0 {
            1.0 - coalesce_telemetry.completed as f64 / submissions
        } else {
            0.0
        },
    ));
    derived.push(("workload/batch".to_string(), BATCH as f64));
    derived.push(("workload/fan".to_string(), FAN as f64));
    derived.push(("workload/route_workers".to_string(), ROUTE_WORKERS as f64));

    let path =
        std::env::var("BENCH_ROUTING_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_routing.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<28} {v:.2}");
    }
}
