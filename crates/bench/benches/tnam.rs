//! Criterion micro-benchmarks for TNAM construction (Algo. 3): the k-SVD
//! path (cosine) and the orthogonal-random-feature path (exp-cosine),
//! across TNAM dimensions — the preprocessing cost of Lemma V.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laca_core::{MetricFn, Tnam, TnamConfig};
use laca_graph::datasets::cora_like;

fn bench_tnam(c: &mut Criterion) {
    let ds = cora_like().generate("cora").unwrap();
    let mut group = c.benchmark_group("tnam_build");
    group.sample_size(10);
    for k in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("cosine_ksvd", k), &k, |b, &k| {
            b.iter(|| Tnam::build(&ds.attributes, &TnamConfig::new(k, MetricFn::Cosine)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("exp_orf", k), &k, |b, &k| {
            b.iter(|| {
                Tnam::build(&ds.attributes, &TnamConfig::new(k, MetricFn::ExpCosine { delta: 1.0 }))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tnam);
criterion_main!(benches);
