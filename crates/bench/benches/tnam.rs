//! Preprocessing benchmark for the multi-threaded TNAM build (Algo. 3):
//! serial versus parallel wall-clock of `Tnam::build` on two registry
//! substrates — **pubmed-like** (n ≈ 19.7k, d = 500, the diffusion/serving
//! bench substrate) and an **amazon-scale slice** (`amazon2m` at 2 %,
//! n ≈ 49k, d = 100) — for both the k-SVD (cosine) and ORF (exp-cosine)
//! paths at the paper's default `k = 32`.
//!
//! The serial leg runs the *same* code under `rayon::run_sequential`
//! (every parallel kernel forced inline, same split order); the parallel
//! leg uses the work-stealing pool at `RAYON_NUM_THREADS`. Outputs are
//! bit-identical by construction (asserted once per dataset here, and
//! exhaustively in `crates/core/tests/parallel_determinism.rs`), so the
//! speedup is pure scheduling.
//!
//! Writes `BENCH_tnam.json` at the repo root (override with
//! `BENCH_TNAM_JSON`): raw timings plus derived `speedup/*` ratios and
//! `host/threads`. **Read speedups together with `host/threads`**: the
//! committed baseline comes from a 1-core container (`host/threads = 1`),
//! where serial and parallel legs are expected to tie (speedup ≈ 1.0, the
//! small gap being scheduler overhead) — the same caveat as the cold legs
//! of `BENCH_serving.json`. Re-run on a multicore box to record real
//! scaling; ≥2× at 4 threads is the target for the k-SVD path.

use criterion::Criterion;
use laca_core::tnam::TnamConfig;
use laca_core::{MetricFn, Tnam};
use laca_graph::datasets::{amazon2m_like, pubmed_like};
use laca_graph::AttributeMatrix;

const K: usize = 32;

fn build_cfgs() -> Vec<(&'static str, TnamConfig)> {
    vec![
        ("cosine_ksvd", TnamConfig::new(K, MetricFn::Cosine)),
        ("exp_orf", TnamConfig::new(K, MetricFn::ExpCosine { delta: 1.0 })),
    ]
}

fn assert_serial_parallel_bits_match(attrs: &AttributeMatrix, cfg: &TnamConfig) {
    let par = Tnam::build(attrs, cfg).unwrap();
    let seq = rayon::run_sequential(|| Tnam::build(attrs, cfg).unwrap());
    for (i, j) in [(0usize, 1usize), (3, 7), (11, 2)] {
        assert_eq!(
            par.s_approx(i, j).to_bits(),
            seq.s_approx(i, j).to_bits(),
            "serial/parallel TNAM divergence — determinism contract broken"
        );
    }
}

fn bench_dataset(c: &mut Criterion, name: &str, attrs: &AttributeMatrix) {
    let mut group = c.benchmark_group("tnam_build");
    group.sample_size(20);
    for (metric, cfg) in build_cfgs() {
        assert_serial_parallel_bits_match(attrs, &cfg);
        group.bench_function(format!("serial/{name}/{metric}"), |b| {
            b.iter(|| rayon::run_sequential(|| Tnam::build(attrs, &cfg).unwrap()))
        });
        group.bench_function(format!("parallel/{name}/{metric}"), |b| {
            b.iter(|| Tnam::build(attrs, &cfg).unwrap())
        });
    }
    group.finish();
}

fn main() {
    eprintln!("[tnam bench] generating pubmed-like (n=19.7k, d=500)...");
    let pubmed = pubmed_like().generate("pubmed").unwrap();
    eprintln!("[tnam bench] generating amazon2m-like at 2% (n~49k, d=100)...");
    let amazon = amazon2m_like(0.02).generate("amazon2m").unwrap();

    let mut criterion = Criterion::default();
    bench_dataset(&mut criterion, "pubmed", &pubmed.attributes);
    bench_dataset(&mut criterion, "amazon2m", &amazon.attributes);

    let results = criterion::take_results();
    let min_of =
        |label: String| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    for ds in ["pubmed", "amazon2m"] {
        for (metric, _) in build_cfgs() {
            let serial = min_of(format!("tnam_build/serial/{ds}/{metric}"));
            let parallel = min_of(format!("tnam_build/parallel/{ds}/{metric}"));
            if let (Some(s), Some(p)) = (serial, parallel) {
                if p > 0.0 {
                    derived.push((format!("speedup/{ds}/{metric}"), s / p));
                }
            }
        }
    }
    derived.push(("host/threads".to_string(), rayon::current_num_threads() as f64));

    let path =
        std::env::var("BENCH_TNAM_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tnam.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<28} {v:.3}");
    }
}
