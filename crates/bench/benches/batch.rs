//! Batched-diffusion benchmark: multi-seed throughput of the lane-major
//! `BatchWorkspace` kernel versus the serial one-seed-at-a-time engine,
//! on the registry's mid-size graph (pubmed-like, n ≈ 19.7k — the same
//! substrate as the diffusion and serving benches).
//!
//! The batched solver keeps every lane bit-identical to the serial
//! schedule (the differential proptest battery pins this), so lanes
//! share traversal work only where their sweeps *align* — extract the
//! same node in the same round. The suite therefore measures three
//! regimes, not one number:
//!
//! * **kernel/aligned** — 16 sweep-aligned lanes (one hot seed
//!   replicated across the batch) through the raw `batch_diffuse_in`
//!   kernel versus 16 serial `adaptive_diffuse_in` solves. Every push is
//!   a dense lane block on the AVX2 path, adjacency and node metadata
//!   load once per node: this is the kernel's upper bound and the
//!   headline ≥2× (measured ≈3×) multi-seed throughput claim at B=16.
//! * **kernel** — `Laca::bdd_batch_with_stats_in` driving a 16-seed cold
//!   burst of *distinct* community-correlated seeds in groups of
//!   `B ∈ {1, 4, 16}`, against the serial `bdd_with_stats_in` loop.
//!   Distinct seeds' adaptive schedules misalign, so lanes mostly miss
//!   each other's sweeps and the lane-major layout costs more than the
//!   sharing recovers (≈0.7–0.9× here — committed so the overhead is on
//!   the record, and so the sparse-`em` push path regressing shows up).
//! * **serving** — a cold 64-query burst through a one-worker
//!   `QueryService` with automatic batch formation off (`batch_max = 1`)
//!   versus on (`batch_max = 16`): the end-to-end cost of forming real
//!   groups out of a backed-up queue under misaligned traffic. This is
//!   why `ServiceConfig` defaults `batch_max` to 1.
//!
//! Writes `BENCH_batch.json` at the repo root (override with
//! `BENCH_BATCH_JSON`): all timings plus derived `qps/*` and `speedup/*`
//! entries. The committed copy is the perf-trajectory baseline
//! `bench_compare` diffs against — the aligned-lane kernel regressing
//! back to serial speed fails the gate.

use criterion::Criterion;
use laca_core::tnam::TnamConfig;
use laca_core::{Laca, LacaParams, MetricFn, Tnam};
use laca_diffusion::{
    adaptive_diffuse_in, batch_diffuse_in, BatchMode, BatchWorkspace, DiffusionParams,
    DiffusionWorkspace, SparseVec,
};
use laca_graph::datasets::pubmed_like;
use laca_graph::{AttributedDataset, NodeId};
use laca_service::{ClusterIndex, QueryService, ServiceConfig};

/// Group widths under test; 16 is `laca_diffusion::MAX_LANES`.
const WIDTHS: [usize; 3] = [1, 4, 16];
/// Seeds per timed kernel burst (one full-width batch at B = 16).
const KERNEL_BURST: usize = 16;
/// Queries per timed serving burst.
const SERVING_BURST: usize = 64;
/// `batch_max` values for the serving comparison.
const BATCH_MAX: [usize; 2] = [1, 16];
/// Threshold for the aligned-lane kernel legs. Finer than the serving
/// default (1e-4) so each solve covers most of the graph: long dense
/// sweeps are exactly the regime batching exists for, and the extra work
/// per solve keeps the leg well clear of timer noise.
const ALIGNED_EPS: f64 = 1e-5;

fn dataset() -> AttributedDataset {
    pubmed_like().generate("pubmed").unwrap()
}

/// The correlated cold burst: distinct seeds spread through **one**
/// ground-truth community. This is the regime automatic batch formation
/// targets — topical / trending traffic hammering one region of the
/// graph, where the per-lane working sets overlap heavily and the shared
/// frontier pass amortizes adjacency and node-metadata loads across
/// lanes. (Scattered seeds with disjoint supports share nothing; the
/// `*_scattered` legs below pin that overhead ceiling.)
fn correlated_burst(ds: &AttributedDataset, len: usize) -> Vec<NodeId> {
    let members = ds.ground_truth(0);
    let step = (members.len() / len).max(1);
    members.iter().step_by(step).take(len).copied().collect()
}

/// The scattered cold burst: distinct seeds striding the whole graph,
/// same recipe as the serving bench's cold workload. Supports are
/// pairwise disjoint, so this is batching's worst case.
fn scattered_burst(n: usize, len: usize) -> Vec<NodeId> {
    (0..len).map(|i| ((i * 13 * 37) % n) as NodeId).collect()
}

fn bench_kernel(c: &mut Criterion, ds: &AttributedDataset) {
    let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::Cosine)).unwrap();
    let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-4)).unwrap();
    let seeds = correlated_burst(ds, KERNEL_BURST);
    let scattered = scattered_burst(ds.graph.n(), KERNEL_BURST);
    let mut serial_ws = DiffusionWorkspace::for_graph(&ds.graph);
    let mut batch_ws = BatchWorkspace::new();

    let mut group = c.benchmark_group("batch/kernel");
    group.sample_size(20);

    // Aligned regime: one hot seed replicated across all 16 lanes, raw
    // diffusion kernel. Every lane extracts the same γ set every sweep,
    // so each push is a dense lane block (AVX2 path) and the adjacency
    // walk is paid once for 16 solves.
    let hot = SparseVec::unit(seeds[0]);
    let aligned: Vec<&SparseVec> = (0..KERNEL_BURST).map(|_| &hot).collect();
    let aligned_eps = vec![ALIGNED_EPS; KERNEL_BURST];
    let dp = DiffusionParams::new(0.8, ALIGNED_EPS);
    group.bench_function("aligned_serial", |b| {
        b.iter(|| {
            for _ in 0..KERNEL_BURST {
                criterion::black_box(
                    adaptive_diffuse_in(&ds.graph, &hot, &dp, &mut serial_ws).unwrap(),
                );
            }
        })
    });
    group.bench_function("aligned_b16", |b| {
        b.iter(|| {
            criterion::black_box(
                batch_diffuse_in(
                    &ds.graph,
                    &aligned,
                    &aligned_eps,
                    &dp,
                    BatchMode::Adaptive,
                    &mut batch_ws,
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("serial", |b| {
        b.iter(|| {
            for &s in &seeds {
                criterion::black_box(engine.bdd_with_stats_in(s, &mut serial_ws).unwrap());
            }
        })
    });
    for &width in &WIDTHS {
        group.bench_function(format!("b{width}"), |b| {
            b.iter(|| {
                for chunk in seeds.chunks(width) {
                    for result in engine.bdd_batch_with_stats_in(chunk, &mut batch_ws) {
                        criterion::black_box(result.unwrap());
                    }
                }
            })
        });
    }
    // Worst case on record: disjoint supports share no traversal, so the
    // lane-major layout is pure overhead here. Committed so a regression
    // that *widens* this gap (or a claim that batching is free) shows up.
    group.bench_function("serial_scattered", |b| {
        b.iter(|| {
            for &s in &scattered {
                criterion::black_box(engine.bdd_with_stats_in(s, &mut serial_ws).unwrap());
            }
        })
    });
    group.bench_function("b16_scattered", |b| {
        b.iter(|| {
            for chunk in scattered.chunks(16) {
                for result in engine.bdd_batch_with_stats_in(chunk, &mut batch_ws) {
                    criterion::black_box(result.unwrap());
                }
            }
        })
    });
    group.finish();
}

fn bench_serving(c: &mut Criterion, ds: &AttributedDataset) {
    let index = ClusterIndex::from_dataset(
        ds,
        &TnamConfig::new(32, MetricFn::Cosine),
        LacaParams::new(1e-4),
    )
    .unwrap();
    let queries = correlated_burst(ds, SERVING_BURST);
    let mut group = c.benchmark_group("batch/serving");
    group.sample_size(20);
    for &bmax in &BATCH_MAX {
        let service = QueryService::start(
            index.clone(),
            ServiceConfig::default()
                .with_workers(1)
                .with_cache_per_worker(0)
                .with_queue_capacity(256)
                .with_batch_max(bmax),
        );
        group.bench_function(format!("bmax{bmax}"), |b| {
            b.iter(|| {
                for answer in service.query_batch(&queries) {
                    criterion::black_box(answer.expect("query failed").rho.support_size());
                }
            })
        });
        let stats = service.stats();
        if bmax > 1 {
            assert!(stats.batches > 0, "a cold 64-burst on one worker must form batches");
        }
        drop(service);
    }
    group.finish();
}

fn main() {
    eprintln!("[batch bench] building pubmed-like dataset + index (TNAM k=32)...");
    let ds = dataset();
    let mut criterion = Criterion::default();
    bench_kernel(&mut criterion, &ds);
    bench_serving(&mut criterion, &ds);

    let results = criterion::take_results();
    // Derived throughput uses the trimmed min — same statistic the CI
    // perf gate compares, so the committed qps numbers match the gate.
    let min_of = |label: &str| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    for label in ["aligned_serial", "aligned_b16", "serial", "serial_scattered", "b16_scattered"] {
        if let Some(ns) = min_of(&format!("batch/kernel/{label}")) {
            derived.push((format!("qps/kernel/{label}"), KERNEL_BURST as f64 / (ns * 1e-9)));
        }
    }
    for &width in &WIDTHS {
        if let Some(ns) = min_of(&format!("batch/kernel/b{width}")) {
            derived.push((format!("qps/kernel/b{width}"), KERNEL_BURST as f64 / (ns * 1e-9)));
        }
    }
    for &bmax in &BATCH_MAX {
        if let Some(ns) = min_of(&format!("batch/serving/bmax{bmax}")) {
            derived.push((format!("qps/serving/bmax{bmax}"), SERVING_BURST as f64 / (ns * 1e-9)));
        }
    }
    let mut speedups: Vec<(String, f64)> = Vec::new();
    {
        let get = |key: &str| derived.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
        // The headline: sweep-aligned lanes through the batched kernel
        // must stay ≥2× the serial solver (measured ≈3× with the AVX2
        // dense-lane path).
        if let (Some(b16), Some(serial)) =
            (get("qps/kernel/aligned_b16"), get("qps/kernel/aligned_serial"))
        {
            speedups.push(("speedup/kernel/aligned_b16_over_serial".to_string(), b16 / serial));
        }
        if let (Some(b16), Some(serial)) = (get("qps/kernel/b16"), get("qps/kernel/serial")) {
            speedups.push(("speedup/kernel/b16_over_serial".to_string(), b16 / serial));
        }
        if let (Some(on), Some(off)) = (get("qps/serving/bmax16"), get("qps/serving/bmax1")) {
            speedups.push(("speedup/serving/bmax16_over_bmax1".to_string(), on / off));
        }
    }
    derived.extend(speedups);
    derived.push(("workload/kernel_burst".to_string(), KERNEL_BURST as f64));
    derived.push(("workload/serving_burst".to_string(), SERVING_BURST as f64));

    let path =
        std::env::var("BENCH_BATCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<36} {v:.2}");
    }
}
