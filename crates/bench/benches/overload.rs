//! Open-loop overload benchmark for `laca-service`: tail latency of
//! *admitted* queries when offered load exceeds capacity, under the
//! shedding admission policies.
//!
//! Unlike the closed-loop serving bench (which submits the next query
//! when the previous one answers, so offered load can never exceed
//! capacity), this harness fires requests on a fixed arrival schedule —
//! `λ = multiplier × capacity` — whether or not earlier requests have
//! resolved. That is the regime admission control exists for: with
//! [`AdmissionPolicy::Shed`] and a shallow queue, an admitted query's
//! queueing delay is bounded by queue depth × service time no matter how
//! far the offered load exceeds capacity, so admitted-side p99 at 4×
//! should sit within ~2× of the 1× baseline while the excess turns into
//! explicit `Overloaded` rejections (`shed_fraction/*`).
//!
//! Legs (single worker; capacity is calibrated closed-loop first):
//!
//! * `overload/shed/x1` — cache off, `Shed`, offered load ≈ capacity.
//! * `overload/shed/x4` — same service, offered load ≈ 4× capacity.
//! * `overload/smart/x4` — cache on, `SmartShed`, 4×: the Zipf head
//!   resolves as hits/joins, so far less is shed at the same load.
//!
//! Requests draw seeds from a Zipf(1.0) distribution over a 256-seed
//! pool (hand-rolled sampler — no `rand` in the hot path). Writes
//! `BENCH_overload.json` at the repo root (override with
//! `BENCH_OVERLOAD_JSON`): per-leg percentile timings over admitted
//! queries plus derived shed fractions, the p99 degradation ratio, and
//! the `host/threads` caveat field (the committed baseline comes from a
//! 1-core container).

use criterion::{percentile_ns, BenchResult};
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_graph::datasets::pubmed_like;
use laca_graph::NodeId;
use laca_service::{
    AdmissionPolicy, ClusterIndex, QueryHandle, QueryService, ServiceConfig, ServiceError,
};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Distinct seeds in the Zipf pool.
const SEED_POOL: usize = 256;
/// Zipf exponent (1.0 = classic web-like skew).
const ZIPF_S: f64 = 1.0;
/// Requests fired per open-loop leg.
const REQUESTS: usize = 800;
/// Submission-queue depth for the overload legs: shallow, so admitted
/// queueing delay (≈ depth × service time) stays bounded.
const QUEUE_DEPTH: usize = 4;
/// Closed-loop queries used to calibrate the service rate.
const CALIBRATION: usize = 64;

fn build_index() -> ClusterIndex {
    let ds = pubmed_like().generate("pubmed").unwrap();
    ClusterIndex::from_dataset(&ds, &TnamConfig::new(32, MetricFn::Cosine), LacaParams::new(1e-4))
        .unwrap()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic Zipf(`ZIPF_S`) request stream over the seed pool.
fn zipf_workload(n_nodes: usize, len: usize, rng_seed: u64) -> Vec<NodeId> {
    let pool: Vec<NodeId> = (0..SEED_POOL).map(|i| ((i * 37) % n_nodes) as NodeId).collect();
    // Cumulative weights 1/rank^s, normalized.
    let mut cdf = Vec::with_capacity(SEED_POOL);
    let mut acc = 0.0f64;
    for rank in 1..=SEED_POOL {
        acc += 1.0 / (rank as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    (0..len)
        .map(|i| {
            let bits = splitmix64(rng_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let u = (bits >> 11) as f64 / (1u64 << 53) as f64 * total;
            let idx = cdf.partition_point(|&c| c < u).min(SEED_POOL - 1);
            pool[idx]
        })
        .collect()
}

/// Mean closed-loop service time per query (cache off, one worker) —
/// the capacity estimate the open-loop arrival schedules multiply.
fn calibrate_service_ns(index: &ClusterIndex) -> u64 {
    let service = QueryService::start(
        index.clone(),
        ServiceConfig::default().with_workers(1).with_cache_per_worker(0).with_queue_capacity(16),
    );
    let seeds: Vec<NodeId> = (0..CALIBRATION).map(|i| ((i * 37) % index.n()) as NodeId).collect();
    // Warm up allocators and branch predictors, then time a full pass.
    for r in service.query_batch(&seeds) {
        criterion::black_box(r.expect("calibration query failed"));
    }
    let t0 = Instant::now();
    for r in service.query_batch(&seeds) {
        criterion::black_box(r.expect("calibration query failed"));
    }
    (t0.elapsed().as_nanos() as u64 / CALIBRATION as u64).max(1)
}

/// Outcome of one open-loop leg.
struct LegOutcome {
    result: BenchResult,
    admitted: usize,
    shed: usize,
    offered_qps: f64,
    elapsed: Duration,
}

/// Sleeps-then-yields until `deadline`. Yielding (not spinning) matters
/// on the 1-core container the baselines come from: a spin-waiting
/// submitter would steal the worker's CPU and inflate the very service
/// times the leg measures.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_millis(1) {
            std::thread::sleep(remaining - Duration::from_micros(500));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Runs one open-loop leg: fire `REQUESTS` submissions on the arrival
/// schedule, collect admitted-query latencies on a side thread (waits in
/// submission order — completion order under the FIFO queue), and fold
/// them into a [`BenchResult`].
fn run_leg(
    label: &str,
    service: &QueryService,
    workload: &[NodeId],
    interarrival: Duration,
) -> LegOutcome {
    let (tx, rx) = mpsc::channel::<(Instant, QueryHandle)>();
    let collector = std::thread::spawn(move || {
        let mut latencies_ns: Vec<u128> = Vec::new();
        let mut late_shed = 0usize;
        while let Ok((submitted, handle)) = rx.recv() {
            match handle.wait() {
                Ok(answer) => {
                    criterion::black_box(answer.rho.support_size());
                    latencies_ns.push(submitted.elapsed().as_nanos());
                }
                // A flight leader shed at the queue resolves its whole
                // flight `Overloaded` *after* submit returned — the
                // coalescing (SmartShed) leg's shed verdicts land here.
                Err(ServiceError::Overloaded) => late_shed += 1,
                Err(e) => panic!("admitted query failed mid-leg: {e}"),
            }
        }
        (latencies_ns, late_shed)
    });
    let mut shed = 0usize;
    let start = Instant::now();
    for (i, &seed) in workload.iter().enumerate() {
        pace_until(start + interarrival * i as u32);
        let handle = service.submit(seed);
        if matches!(handle.immediate_error(), Some(ServiceError::Overloaded)) {
            shed += 1;
        } else {
            tx.send((Instant::now(), handle)).expect("collector died");
        }
    }
    drop(tx);
    let (mut latencies_ns, late_shed) = collector.join().expect("collector panicked");
    shed += late_shed;
    let elapsed = start.elapsed();
    assert!(!latencies_ns.is_empty(), "{label}: every request was shed — calibration is off");
    latencies_ns.sort_unstable();
    let n = latencies_ns.len();
    let mean = latencies_ns.iter().sum::<u128>() / n as u128;
    let result = BenchResult {
        label: label.to_string(),
        mean_ns: mean,
        min_ns: latencies_ns[0],
        max_ns: latencies_ns[n - 1],
        tmin_ns: latencies_ns[n / 10],
        median_ns: latencies_ns[n / 2],
        p50_ns: percentile_ns(&latencies_ns, 50, 100),
        p99_ns: percentile_ns(&latencies_ns, 99, 100),
        p999_ns: percentile_ns(&latencies_ns, 999, 1000),
        samples: n,
    };
    LegOutcome {
        result,
        admitted: n,
        shed,
        offered_qps: 1e9 / interarrival.as_nanos() as f64,
        elapsed,
    }
}

fn main() {
    eprintln!("[overload bench] building pubmed-like index (TNAM k=32)...");
    let index = build_index();
    let service_ns = calibrate_service_ns(&index);
    eprintln!(
        "[overload bench] calibrated service time: {:?}/query ({:.0} q/s capacity)",
        Duration::from_nanos(service_ns),
        1e9 / service_ns as f64
    );

    let mut results: Vec<BenchResult> = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();
    let mut record = |outcome: LegOutcome| {
        let frac = outcome.shed as f64 / (outcome.admitted + outcome.shed) as f64;
        let leg = outcome.result.label.trim_start_matches("overload/").replace('/', "_");
        eprintln!(
            "[overload bench] {}: {} admitted / {} shed in {:?} (p99 {:?})",
            outcome.result.label,
            outcome.admitted,
            outcome.shed,
            outcome.elapsed,
            Duration::from_nanos(outcome.result.p99_ns as u64),
        );
        derived.push((format!("shed_fraction/{leg}"), frac));
        derived.push((format!("offered_qps/{leg}"), outcome.offered_qps));
        derived.push((
            format!("served_qps/{leg}"),
            outcome.admitted as f64 / outcome.elapsed.as_secs_f64(),
        ));
        results.push(outcome.result);
    };

    // Shed legs share one service: same cache state (none), same queue.
    let shed_service = QueryService::start(
        index.clone(),
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_per_worker(0)
            .with_queue_capacity(QUEUE_DEPTH)
            .with_admission(AdmissionPolicy::Shed),
    );
    let workload = zipf_workload(index.n(), REQUESTS, 0x10ad);
    record(run_leg("overload/shed/x1", &shed_service, &workload, Duration::from_nanos(service_ns)));
    record(run_leg(
        "overload/shed/x4",
        &shed_service,
        &workload,
        Duration::from_nanos(service_ns / 4),
    ));
    drop(shed_service);

    // SmartShed leg: cache on — the Zipf head coalesces and hits.
    let smart_service = QueryService::start(
        index.clone(),
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_per_worker(SEED_POOL)
            .with_queue_capacity(QUEUE_DEPTH)
            .with_admission(AdmissionPolicy::SmartShed),
    );
    record(run_leg(
        "overload/smart/x4",
        &smart_service,
        &workload,
        Duration::from_nanos(service_ns / 4),
    ));
    let smart_stats = smart_service.stats();
    derived.push(("hit_rate/smart_x4".to_string(), smart_stats.hit_rate()));
    derived.push(("coalesced/smart_x4".to_string(), smart_stats.coalesced as f64));
    drop(smart_service);

    // The acceptance headline: admitted-query p99 at 4× offered load
    // versus the 1× baseline, both under Shed. Bounded queueing delay
    // should keep this well under the 2× bar.
    let p99 = |label: &str| {
        results.iter().find(|r| r.label == label).map(|r| r.p99_ns as f64).unwrap_or(f64::NAN)
    };
    derived.push((
        "p99_ratio_4x_over_1x".to_string(),
        p99("overload/shed/x4") / p99("overload/shed/x1"),
    ));
    derived.push(("service_time_ns".to_string(), service_ns as f64));
    derived.push(("workload/seed_pool".to_string(), SEED_POOL as f64));
    derived.push(("workload/zipf_s".to_string(), ZIPF_S));
    derived.push(("workload/requests".to_string(), REQUESTS as f64));
    derived.push(("workload/queue_depth".to_string(), QUEUE_DEPTH as f64));
    // Committed baselines come from a 1-core container: read absolute
    // times and ratios together with this field (PR 4 convention).
    derived.push(("host/threads".to_string(), rayon::current_num_threads() as f64));

    let path =
        std::env::var("BENCH_OVERLOAD_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_overload.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<28} {v:.2}");
    }
}
