//! Criterion micro-benchmarks for the LACA online phase (Algo. 4): one
//! full seed query across diffusion thresholds — the `O(k/((1−α)ε))`
//! claim behind Fig. 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_graph::datasets::{cora_like, pubmed_like};

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("laca_online");
    group.sample_size(20);
    for (name, spec) in [("cora", cora_like()), ("pubmed", pubmed_like())] {
        let ds = spec.generate(name).unwrap();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::Cosine)).unwrap();
        for eps in [1e-4f64, 1e-6f64] {
            let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(eps)).unwrap();
            group.bench_with_input(
                BenchmarkId::new(name, format!("{eps:.0e}")),
                &engine,
                |b, e| b.iter(|| e.bdd(0).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
