//! Persistence benchmark: cold `ClusterIndex` rebuild versus loading the
//! persisted image back from an [`laca_persist::IndexStore`], on the
//! registry's mid-size graph (pubmed-like, n ≈ 19.7k — the same substrate
//! as the diffusion and serving benches).
//!
//! Four legs:
//!
//! * **rebuild** — the full offline pipeline: TNAM construction over the
//!   attribute matrix plus all index plumbing. This is what every service
//!   restart pays without a store.
//! * **store_load** — `IndexStore::load`: read the image from disk, run
//!   the complete fail-closed validation pipeline (checksums, structural
//!   validators, fingerprint re-verification) and reconstruct the index.
//!   The ISSUE acceptance bar — and the release-mode assertion in the
//!   `persist` CI job — is rebuild/store_load ≥ 10×.
//! * **write_bytes / read_bytes** — the in-memory serializer and parser
//!   alone, isolating format cost from filesystem cost.
//!
//! Writes `BENCH_persist.json` at the repo root (override with
//! `BENCH_PERSIST_JSON`): the timings plus derived `speedup/*`,
//! `throughput/*` and `image/bytes` entries. The committed copy is the
//! perf-trajectory baseline `bench_compare` diffs against.

use criterion::Criterion;
use laca_bench::load_dataset;
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_persist::{read_index_bytes, write_index_bytes, IndexStore};
use laca_service::ClusterIndex;

fn main() {
    eprintln!("[persist bench] building pubmed-like index (TNAM k=32)...");
    let ds = load_dataset("pubmed", 1.0);
    let tnam = TnamConfig::new(32, MetricFn::Cosine);
    let params = LacaParams::new(1e-4);

    // Reference index and its published on-disk image, built outside any
    // timed region.
    let index = ClusterIndex::from_dataset(&ds, &tnam, params.clone()).expect("build index");
    let dir = std::env::temp_dir().join(format!("laca-bench-persist-{}", std::process::id()));
    let store = IndexStore::open(&dir).expect("open store");
    let path = store.save(&index).expect("publish index");
    let image_len = std::fs::metadata(&path).expect("stat image").len() as f64;
    let (dataset, fp) = (index.dataset().to_string(), index.fingerprint());
    let bytes = write_index_bytes(&index);

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("persist");
    // The rebuild leg runs for seconds per sample; the vendored harness's
    // per-benchmark time budget trims the sample count, so ask for few.
    group.sample_size(10);
    group.bench_function("rebuild/pubmed", |b| {
        b.iter(|| {
            let rebuilt =
                ClusterIndex::from_dataset(&ds, &tnam, params.clone()).expect("rebuild index");
            criterion::black_box(rebuilt.fingerprint())
        })
    });
    group.bench_function("store_load/pubmed", |b| {
        b.iter(|| {
            let loaded = store.load(&dataset, fp).expect("load index");
            criterion::black_box(loaded.fingerprint())
        })
    });
    group.bench_function("write_bytes/pubmed", |b| {
        b.iter(|| criterion::black_box(write_index_bytes(&index).len()))
    });
    group.bench_function("read_bytes/pubmed", |b| {
        b.iter(|| {
            let parsed = read_index_bytes(&bytes).expect("parse image");
            criterion::black_box(parsed.fingerprint())
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();

    let results = criterion::take_results();
    // Derived ratios use the trimmed min — the same statistic the CI perf
    // gate compares, so the committed speedup matches the gate's view.
    let min_of = |label: &str| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    if let (Some(rebuild), Some(load)) =
        (min_of("persist/rebuild/pubmed"), min_of("persist/store_load/pubmed"))
    {
        derived.push(("speedup/load_over_rebuild".to_string(), rebuild / load));
    }
    if let (Some(rebuild), Some(parse)) =
        (min_of("persist/rebuild/pubmed"), min_of("persist/read_bytes/pubmed"))
    {
        derived.push(("speedup/parse_over_rebuild".to_string(), rebuild / parse));
    }
    if let Some(parse) = min_of("persist/read_bytes/pubmed") {
        derived.push((
            "throughput/parse_gib_per_s".to_string(),
            image_len / (parse * 1e-9) / f64::from(1u32 << 30),
        ));
    }
    derived.push(("image/bytes".to_string(), image_len));

    let path =
        std::env::var("BENCH_PERSIST_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_persist.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<32} {v:.2}");
    }
}
