//! Serving-throughput benchmark for `laca-service`: queries/sec versus
//! worker count, cold versus warm result cache, on the registry's
//! mid-size graph (pubmed-like, n ≈ 19.7k — the same substrate as the
//! diffusion bench).
//!
//! Two scenarios per worker count `w ∈ {1, 2, 4}`:
//!
//! * **cold** — result cache disabled; every query runs the full Algo. 4
//!   pipeline on a worker. This measures raw compute throughput: it
//!   scales with workers up to the machine's core count (the committed
//!   baseline is from a 1-core container, where it is flat by
//!   construction).
//! * **warm** — the cache is enabled at the service's default
//!   *per-worker* budget semantics (each worker contributes a fixed
//!   number of cached answers, here 128, mirroring sharded serving
//!   systems where provisioning a worker brings its memory budget along).
//!   The workload draws uniformly from a 384-seed working set, so the
//!   aggregate cache covers 1/3 of the set at w=1 and all of it at w=4 —
//!   warm throughput scales with worker count through the hit rate
//!   *even on a single core*, and through compute parallelism beyond it.
//!
//! Writes `BENCH_serving.json` at the repo root (override with
//! `BENCH_SERVING_JSON`): all timings plus derived `qps/*`, `hit_rate/*`
//! and `scaling/*` entries. The committed copy is the perf-trajectory
//! baseline `bench_compare` diffs against.

use criterion::Criterion;
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_graph::datasets::pubmed_like;
use laca_graph::NodeId;
use laca_service::{ClusterIndex, QueryService, ServiceConfig, ServiceStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct seeds in the query working set.
const SEED_POOL: usize = 384;
/// Result-cache budget each worker contributes (answers).
const CACHE_PER_WORKER: usize = 128;
/// Queries per timed cold batch.
const COLD_BATCH: usize = 64;
/// Queries per timed warm batch.
const WARM_BATCH: usize = 768;
/// Worker counts under test.
const WORKERS: [usize; 3] = [1, 2, 4];

fn build_index() -> ClusterIndex {
    let ds = pubmed_like().generate("pubmed").unwrap();
    ClusterIndex::from_dataset(&ds, &TnamConfig::new(32, MetricFn::Cosine), LacaParams::new(1e-4))
        .unwrap()
}

/// The working set: `SEED_POOL` distinct, deterministic seeds.
fn seed_pool(n: usize) -> Vec<NodeId> {
    (0..SEED_POOL).map(|i| ((i * 37) % n) as NodeId).collect()
}

/// A fixed uniform-random draw sequence over the pool (IRM workload).
fn workload(pool: &[NodeId], len: usize, rng_seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

fn run_batch(service: &QueryService, batch: &[NodeId]) {
    for answer in service.query_batch(batch) {
        criterion::black_box(answer.expect("query failed").rho.support_size());
    }
}

/// Per-config warm-window counters captured while the bench runs.
struct WarmTelemetry {
    workers: usize,
    window: ServiceStats,
}

fn bench_serving(c: &mut Criterion, index: &ClusterIndex, telemetry: &mut Vec<WarmTelemetry>) {
    let pool = seed_pool(index.n());
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    for &w in &WORKERS {
        // Cold: cache off; distinct seeds cycling the pool.
        let cold = QueryService::start(
            index.clone(),
            ServiceConfig::default()
                .with_workers(w)
                .with_cache_per_worker(0)
                .with_queue_capacity(256),
        );
        let cold_batch: Vec<NodeId> =
            (0..COLD_BATCH).map(|i| pool[(i * 13) % pool.len()]).collect();
        group.bench_function(format!("cold/w{w}"), |b| b.iter(|| run_batch(&cold, &cold_batch)));
        drop(cold);

        // Warm: per-worker cache budget; uniform draws from the pool.
        let warm = QueryService::start(
            index.clone(),
            ServiceConfig::default()
                .with_workers(w)
                .with_cache_per_worker(CACHE_PER_WORKER)
                .with_queue_capacity(256),
        );
        let warm_batch = workload(&pool, WARM_BATCH, 0x5EED ^ w as u64);
        // Reach the steady-state hit rate before timing starts, then zero
        // the counters so the snapshot below covers only the warm window.
        run_batch(&warm, &warm_batch);
        warm.reset_stats();
        group.bench_function(format!("warm/w{w}"), |b| b.iter(|| run_batch(&warm, &warm_batch)));
        telemetry.push(WarmTelemetry { workers: w, window: warm.stats() });
    }
    group.finish();
}

fn main() {
    eprintln!("[serving bench] building pubmed-like index (TNAM k=32)...");
    let index = build_index();
    let mut telemetry = Vec::new();
    let mut criterion = Criterion::default();
    bench_serving(&mut criterion, &index, &mut telemetry);

    let results = criterion::take_results();
    // Derived throughput uses the trimmed min — same statistic the CI
    // perf gate compares, so the committed qps numbers match the gate.
    let min_of = |label: &str| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    for &w in &WORKERS {
        if let Some(ns) = min_of(&format!("serving/cold/w{w}")) {
            derived.push((format!("qps/cold/w{w}"), COLD_BATCH as f64 / (ns * 1e-9)));
        }
        if let Some(ns) = min_of(&format!("serving/warm/w{w}")) {
            derived.push((format!("qps/warm/w{w}"), WARM_BATCH as f64 / (ns * 1e-9)));
        }
    }
    for t in &telemetry {
        derived.push((format!("hit_rate/warm/w{}", t.workers), t.window.hit_rate()));
        derived.push((
            format!("cache_capacity/w{}", t.workers),
            (t.workers * CACHE_PER_WORKER) as f64,
        ));
    }
    let mut scaling: Vec<(String, f64)> = Vec::new();
    {
        let ratio = |kind: &str, hi: usize, lo: usize| {
            let get = |w: usize| {
                derived.iter().find(|(k, _)| k == &format!("qps/{kind}/w{w}")).map(|&(_, v)| v)
            };
            match (get(hi), get(lo)) {
                (Some(a), Some(b)) if b > 0.0 => Some(a / b),
                _ => None,
            }
        };
        for kind in ["cold", "warm"] {
            if let Some(r) = ratio(kind, 4, 1) {
                scaling.push((format!("scaling/{kind}/w4_over_w1"), r));
            }
            if let Some(r) = ratio(kind, 2, 1) {
                scaling.push((format!("scaling/{kind}/w2_over_w1"), r));
            }
        }
    }
    derived.extend(scaling);
    derived.push(("workload/seed_pool".to_string(), SEED_POOL as f64));
    derived.push(("workload/warm_batch".to_string(), WARM_BATCH as f64));
    derived.push(("workload/cold_batch".to_string(), COLD_BATCH as f64));

    let path =
        std::env::var("BENCH_SERVING_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} derived entries to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<28} {v:.2}");
    }
}
