//! Criterion micro-benchmarks for the diffusion solvers (Section IV):
//! GreedyDiffuse vs the non-greedy iteration vs AdaptiveDiffuse across
//! thresholds — the quantitative backing for Fig. 5 / Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laca_diffusion::{
    adaptive_diffuse, greedy_diffuse, nongreedy_diffuse, DiffusionParams, SparseVec,
};
use laca_graph::datasets::pubmed_like;

fn bench_diffusion(c: &mut Criterion) {
    let ds = pubmed_like().generate("pubmed").unwrap();
    let f = SparseVec::unit(0);
    let mut group = c.benchmark_group("diffusion");
    group.sample_size(10);
    for eps in [1e-4f64, 1e-6f64] {
        let params = DiffusionParams::new(0.8, eps);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{eps:.0e}")),
            &params,
            |b, p| b.iter(|| greedy_diffuse(&ds.graph, &f, p).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("nongreedy", format!("{eps:.0e}")),
            &params,
            |b, p| b.iter(|| nongreedy_diffuse(&ds.graph, &f, p).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("{eps:.0e}")),
            &params,
            |b, p| b.iter(|| adaptive_diffuse(&ds.graph, &f, p).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diffusion);
criterion_main!(benches);
