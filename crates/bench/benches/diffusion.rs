//! Criterion micro-benchmarks for the diffusion solvers (Section IV):
//! the quantitative backing for Fig. 5 / Table II, plus an **old-vs-new**
//! comparison of the pre-workspace solvers against the epoch-stamped
//! `DiffusionWorkspace` implementations on the registry's mid-size graph
//! (pubmed-like, n ≈ 19.7k) across the operating range of `ε`.
//!
//! "Old" is the seed repo's implementation verbatim (hash-map state,
//! per-push division, per-iteration support rescans), reproduced below —
//! `laca_diffusion::reference` is *not* used here because it already
//! adopts the new arithmetic (it exists as a bitwise-parity oracle, not a
//! perf baseline).
//!
//! Besides the console report, this bench writes a machine-readable
//! `BENCH_diffusion.json` (override the path with `BENCH_DIFFUSION_JSON`)
//! containing every timing and the derived `speedup/*` ratios, so later
//! PRs have a perf trajectory to compare against.

use criterion::{criterion_group, BenchmarkId, Criterion};
use laca_diffusion::{
    adaptive_diffuse_in, greedy_diffuse_in, nongreedy_diffuse_in, DiffusionParams, DiffusionResult,
    DiffusionStats, DiffusionWorkspace, SparseVec,
};
use laca_graph::datasets::pubmed_like;
use laca_graph::{CsrGraph, NodeId};

// ---- The seed repo's solvers, verbatim (the "old" side). ----

fn old_extract_gamma(graph: &CsrGraph, r: &mut SparseVec, epsilon: f64) -> Vec<(NodeId, f64)> {
    let mut gamma: Vec<(NodeId, f64)> = Vec::new();
    for (i, v) in r.iter() {
        if v / graph.weighted_degree(i) >= epsilon {
            gamma.push((i, v));
        }
    }
    for &(i, _) in &gamma {
        r.take(i);
    }
    gamma
}

fn old_push_gamma(
    graph: &CsrGraph,
    gamma: &[(NodeId, f64)],
    alpha: f64,
    q: &mut SparseVec,
    r: &mut SparseVec,
) -> usize {
    let mut pushes = 0usize;
    for &(i, v) in gamma {
        q.add(i, (1.0 - alpha) * v);
        let spread = alpha * v / graph.weighted_degree(i);
        for (j, w) in graph.edges_of(i) {
            r.add(j, spread * w);
            pushes += 1;
        }
    }
    pushes
}

fn old_nongreedy_step(graph: &CsrGraph, alpha: f64, q: &mut SparseVec, r: &mut SparseVec) -> usize {
    let mut pushes = 0usize;
    let old = std::mem::take(r);
    for (i, v) in old.iter() {
        q.add(i, (1.0 - alpha) * v);
        let spread = alpha * v / graph.weighted_degree(i);
        for (j, w) in graph.edges_of(i) {
            r.add(j, spread * w);
            pushes += 1;
        }
    }
    pushes
}

fn old_greedy(graph: &CsrGraph, f: &SparseVec, params: &DiffusionParams) -> DiffusionResult {
    let mut r = f.clone();
    let mut q = SparseVec::new();
    let mut stats = DiffusionStats::default();
    loop {
        let gamma = old_extract_gamma(graph, &mut r, params.epsilon);
        if gamma.is_empty() {
            break;
        }
        stats.iterations += 1;
        stats.push_operations += old_push_gamma(graph, &gamma, params.alpha, &mut q, &mut r);
    }
    DiffusionResult { reserve: q, residual: r, stats }
}

fn old_nongreedy(graph: &CsrGraph, f: &SparseVec, params: &DiffusionParams) -> DiffusionResult {
    let mut r = f.clone();
    let mut q = SparseVec::new();
    let mut stats = DiffusionStats::default();
    loop {
        let above = r.iter().any(|(i, v)| v / graph.weighted_degree(i) >= params.epsilon);
        if !above {
            break;
        }
        stats.iterations += 1;
        stats.nongreedy_cost += r.volume(graph);
        stats.push_operations += old_nongreedy_step(graph, params.alpha, &mut q, &mut r);
    }
    DiffusionResult { reserve: q, residual: r, stats }
}

fn old_adaptive(graph: &CsrGraph, f: &SparseVec, params: &DiffusionParams) -> DiffusionResult {
    let mut r = f.clone();
    let mut q = SparseVec::new();
    let mut stats = DiffusionStats::default();
    let budget = f.l1_norm() / ((1.0 - params.alpha) * params.epsilon);
    loop {
        let supp_r = r.support_size();
        let supp_gamma =
            r.iter().filter(|&(i, v)| v / graph.weighted_degree(i) >= params.epsilon).count();
        let ratio = if supp_r == 0 { 0.0 } else { supp_gamma as f64 / supp_r as f64 };
        let vol_r = r.volume(graph);
        if ratio > params.sigma && stats.nongreedy_cost + vol_r < budget {
            stats.iterations += 1;
            stats.nongreedy_cost += vol_r;
            stats.push_operations += old_nongreedy_step(graph, params.alpha, &mut q, &mut r);
        } else {
            let gamma = old_extract_gamma(graph, &mut r, params.epsilon);
            if gamma.is_empty() {
                break;
            }
            stats.iterations += 1;
            stats.push_operations += old_push_gamma(graph, &gamma, params.alpha, &mut q, &mut r);
        }
    }
    DiffusionResult { reserve: q, residual: r, stats }
}

// ---- The benchmark proper. ----

fn bench_diffusion(c: &mut Criterion) {
    let ds = pubmed_like().generate("pubmed").unwrap();
    let f = SparseVec::unit(0);
    let mut ws = DiffusionWorkspace::for_graph(&ds.graph);
    let mut group = c.benchmark_group("diffusion");
    group.sample_size(20);
    for eps in [1e-3f64, 1e-4f64, 1e-5f64, 1e-6f64] {
        let params = DiffusionParams::new(0.8, eps);
        let id = format!("{eps:.0e}");
        // Workspace-based production solvers.
        group.bench_with_input(BenchmarkId::new("greedy", &id), &params, |b, p| {
            b.iter(|| greedy_diffuse_in(&ds.graph, &f, p, &mut ws).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("adaptive", &id), &params, |b, p| {
            b.iter(|| adaptive_diffuse_in(&ds.graph, &f, p, &mut ws).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nongreedy", &id), &params, |b, p| {
            b.iter(|| nongreedy_diffuse_in(&ds.graph, &f, p, &mut ws).unwrap())
        });
        // The pre-workspace implementations.
        group.bench_with_input(BenchmarkId::new("greedy_old", &id), &params, |b, p| {
            b.iter(|| old_greedy(&ds.graph, &f, p))
        });
        group.bench_with_input(BenchmarkId::new("adaptive_old", &id), &params, |b, p| {
            b.iter(|| old_adaptive(&ds.graph, &f, p))
        });
        group.bench_with_input(BenchmarkId::new("nongreedy_old", &id), &params, |b, p| {
            b.iter(|| old_nongreedy(&ds.graph, &f, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diffusion);

fn main() {
    benches();
    let results = criterion::take_results();
    // Derived old/new ratios, computed from the noise-tolerant trimmed-min times.
    let min_of = |label: &str| results.iter().find(|r| r.label == label).map(|r| r.tmin_ns as f64);
    let mut derived: Vec<(String, f64)> = Vec::new();
    for solver in ["greedy", "adaptive", "nongreedy"] {
        for eps in ["1e-3", "1e-4", "1e-5", "1e-6"] {
            let new = min_of(&format!("diffusion/{solver}/{eps}"));
            let old = min_of(&format!("diffusion/{solver}_old/{eps}"));
            if let (Some(new), Some(old)) = (new, old) {
                derived.push((format!("speedup/{solver}/{eps}"), old / new));
            }
        }
    }
    // Default to the workspace root (cargo bench runs with the package as
    // cwd), so the committed perf trajectory lives at the repo top level.
    let path =
        std::env::var("BENCH_DIFFUSION_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_diffusion.json")
        });
    criterion::write_json(&path, &results, &derived).expect("failed to write bench JSON");
    // This custom main bypasses `criterion_main!`, so honor the generic
    // CRITERION_JSON hook here too (README documents it for every suite).
    if let Ok(generic) = std::env::var("CRITERION_JSON") {
        if !generic.is_empty() {
            criterion::write_json(std::path::Path::new(&generic), &results, &derived)
                .expect("failed to write CRITERION_JSON");
        }
    }
    println!(
        "\nwrote {} results and {} speedups to {}",
        results.len(),
        derived.len(),
        path.display()
    );
    for (k, v) in &derived {
        println!("{k:<28} {v:.2}x");
    }
}
