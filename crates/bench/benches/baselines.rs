//! Criterion micro-benchmarks for one representative query per baseline
//! family, against LACA on the same dataset — the per-family cost
//! hierarchy of Table IV.

use criterion::{criterion_group, criterion_main, Criterion};
use laca_baselines::attr_sim::{AttrSimKind, SimAttr};
use laca_baselines::flow_diffusion::FlowDiffusion;
use laca_baselines::hk_relax::HkRelax;
use laca_baselines::link_sim::{LinkSim, LinkSimKind};
use laca_baselines::pr_nibble::PrNibble;
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_graph::datasets::cora_like;

fn bench_baselines(c: &mut Criterion) {
    let ds = cora_like().generate("cora").unwrap();
    let size = 200usize;
    let mut group = c.benchmark_group("baseline_query");
    group.sample_size(20);

    let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::Cosine)).unwrap();
    let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-6)).unwrap();
    group.bench_function("laca_c", |b| b.iter(|| engine.cluster(0, size).unwrap()));

    group.bench_function("pr_nibble", |b| {
        b.iter(|| PrNibble::new(&ds.graph, 0.8, 1e-6).cluster(0, size).unwrap())
    });
    group.bench_function("hk_relax", |b| {
        b.iter(|| HkRelax::new(&ds.graph, 5.0, 1e-6).cluster(0, size).unwrap())
    });
    group.bench_function("flow_diffusion_p2", |b| {
        b.iter(|| FlowDiffusion::new(&ds.graph).cluster(0, size).unwrap())
    });
    group.bench_function("jaccard", |b| {
        b.iter(|| LinkSim::new(&ds.graph, LinkSimKind::Jaccard).cluster(0, size).unwrap())
    });
    group.bench_function("sim_attr_c", |b| {
        b.iter(|| {
            SimAttr::new(&ds.attributes, AttrSimKind::Cosine).unwrap().cluster(0, size).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
