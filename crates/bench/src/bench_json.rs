//! Reader for the `BENCH_*.json` files the criterion stand-in writes
//! (`criterion::write_json`): `{"results": [...], "derived": {...}}`.
//!
//! The workspace has no serde, and the format is our own writer's output,
//! so this is a small line-oriented parser rather than a general JSON
//! reader — exactly inverse to `write_json`, with tests round-tripping
//! through it. `bench_compare` builds on this to diff two bench runs.

/// One benchmark's timings, mirroring `criterion::BenchResult`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Full label, e.g. `"serving/warm/w4"`.
    pub label: String,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Trimmed minimum — the 10th-percentile order statistic, immune to a
    /// single lucky sample; the CI gate's comparison metric. Files written
    /// before the field existed parse as `tmin_ns = min_ns`.
    pub tmin_ns: u128,
    /// Median sample. Pre-field files parse as `median_ns = mean_ns`.
    pub median_ns: u128,
    /// Nearest-rank 50th percentile. Pre-percentile files parse as
    /// `p50_ns = median_ns` (after that field's own fallback).
    pub p50_ns: u128,
    /// Nearest-rank 99th percentile — the overload suite's gate metric.
    /// Pre-percentile files parse as `p99_ns = max_ns` (the conservative
    /// direction: an old baseline's tail can only look worse, so a new
    /// run is never held to a standard the old data can't support).
    pub p99_ns: u128,
    /// Nearest-rank 99.9th percentile. Pre-percentile files parse as
    /// `p999_ns = max_ns`.
    pub p999_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// A parsed bench file: timed results plus derived named scalars
/// (speedups, queries/sec, hit rates, ...).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchFile {
    /// The `"results"` array.
    pub results: Vec<BenchEntry>,
    /// The `"derived"` map, in file order (`null` entries are skipped).
    pub derived: Vec<(String, f64)>,
}

impl BenchFile {
    /// Looks a result up by exact label.
    pub fn result(&self, label: &str) -> Option<&BenchEntry> {
        self.results.iter().find(|r| r.label == label)
    }

    /// Looks a derived scalar up by exact key.
    pub fn derived(&self, key: &str) -> Option<f64> {
        self.derived.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Extracts the string value of `"key": "..."` from a line.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric value of `"key": 123` from a line.
fn extract_num(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses one `"key": value` line of the derived section.
fn parse_derived_line(line: &str) -> Option<(String, f64)> {
    let rest = line.trim().strip_prefix('"')?;
    let key_end = rest.find('"')?;
    let key = rest[..key_end].to_string();
    let value = rest[key_end + 1..].trim_start().strip_prefix(':')?.trim().trim_end_matches(',');
    value.parse::<f64>().ok().map(|v| (key, v))
}

/// Parses a bench JSON file's text. Unknown lines are ignored, so the
/// parser tolerates formatting drift as long as the field layout (one
/// result object per line; one derived entry per line after a
/// `"derived"` marker) holds.
pub fn parse(text: &str) -> Result<BenchFile, String> {
    let mut out = BenchFile::default();
    let mut in_derived = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"derived\"") {
            in_derived = true;
            continue;
        }
        if trimmed.contains("\"label\"") {
            let label = extract_str(trimmed, "label")
                .ok_or_else(|| format!("malformed result line: {trimmed}"))?;
            let num = |key: &str| {
                extract_num(trimmed, key)
                    .ok_or_else(|| format!("result `{label}` is missing `{key}`"))
            };
            let (mean_ns, min_ns, max_ns, samples) =
                (num("mean_ns")?, num("min_ns")?, num("max_ns")?, num("samples")? as usize);
            // The statistical fields postdate the format: old baselines
            // degrade to the raw min / mean rather than failing to parse.
            let tmin_ns = extract_num(trimmed, "tmin_ns").unwrap_or(min_ns);
            let median_ns = extract_num(trimmed, "median_ns").unwrap_or(mean_ns);
            let p50_ns = extract_num(trimmed, "p50_ns").unwrap_or(median_ns);
            let p99_ns = extract_num(trimmed, "p99_ns").unwrap_or(max_ns);
            let p999_ns = extract_num(trimmed, "p999_ns").unwrap_or(max_ns);
            out.results.push(BenchEntry {
                label,
                mean_ns,
                min_ns,
                max_ns,
                tmin_ns,
                median_ns,
                p50_ns,
                p99_ns,
                p999_ns,
                samples,
            });
        } else if in_derived {
            if let Some(entry) = parse_derived_line(trimmed) {
                out.derived.push(entry);
            }
        }
    }
    if out.results.is_empty() && out.derived.is_empty() {
        return Err("no benchmark results found (is this a BENCH_*.json file?)".to_string());
    }
    Ok(out)
}

/// Parses the bench JSON file at `path`.
pub fn parse_file(path: &std::path::Path) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// One label's old-vs-new comparison from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The shared benchmark label.
    pub label: String,
    /// Old (baseline) time in nanoseconds.
    pub old_ns: u128,
    /// New (candidate) time in nanoseconds.
    pub new_ns: u128,
    /// `new / old` — above 1 is slower than baseline.
    pub ratio: f64,
}

/// Which timing field a comparison uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fastest sample.
    Min,
    /// Mean over samples.
    Mean,
    /// Trimmed minimum (10th-percentile order statistic) — robust on both
    /// sides: background load cannot inflate it the way it inflates the
    /// mean, and one lucky sample cannot deflate it the way it deflates
    /// the raw min. The default, and what the blocking CI gate compares.
    TrimmedMin,
    /// Median sample.
    Median,
    /// Nearest-rank 50th percentile.
    P50,
    /// Nearest-rank 99th percentile — the tail-latency gate metric for
    /// open-loop suites (overload), where central tendency hides exactly
    /// the degradation the suite exists to measure.
    P99,
    /// Nearest-rank 99.9th percentile.
    P999,
}

impl Metric {
    /// Parses a CLI metric name (`bench_compare --metric ...`).
    pub fn from_name(name: &str) -> Option<Metric> {
        match name {
            "min" => Some(Metric::Min),
            "mean" => Some(Metric::Mean),
            "tmin" => Some(Metric::TrimmedMin),
            "median" => Some(Metric::Median),
            "p50" => Some(Metric::P50),
            "p99" => Some(Metric::P99),
            "p999" => Some(Metric::P999),
            _ => None,
        }
    }
}

/// Compares every label present in both files; returns the comparisons
/// plus the labels only one side has.
pub fn compare(
    old: &BenchFile,
    new: &BenchFile,
    metric: Metric,
) -> (Vec<Comparison>, Vec<String>, Vec<String>) {
    let pick = |e: &BenchEntry| match metric {
        Metric::Min => e.min_ns,
        Metric::Mean => e.mean_ns,
        Metric::TrimmedMin => e.tmin_ns,
        Metric::Median => e.median_ns,
        Metric::P50 => e.p50_ns,
        Metric::P99 => e.p99_ns,
        Metric::P999 => e.p999_ns,
    };
    let mut common = Vec::new();
    let mut only_old = Vec::new();
    for o in &old.results {
        match new.result(&o.label) {
            Some(n) => {
                let (old_ns, new_ns) = (pick(o), pick(n));
                common.push(Comparison {
                    label: o.label.clone(),
                    old_ns,
                    new_ns,
                    ratio: new_ns as f64 / (old_ns.max(1)) as f64,
                });
            }
            None => only_old.push(o.label.clone()),
        }
    }
    let only_new = new
        .results
        .iter()
        .filter(|n| old.result(&n.label).is_none())
        .map(|n| n.label.clone())
        .collect();
    (common, only_old, only_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_criterion_writer() {
        let results = vec![
            criterion::BenchResult {
                label: "serving/cold/w1".to_string(),
                mean_ns: 1_000_000,
                min_ns: 900_000,
                max_ns: 1_200_000,
                tmin_ns: 950_000,
                median_ns: 1_010_000,
                p50_ns: 1_005_000,
                p99_ns: 1_190_000,
                p999_ns: 1_200_000,
                samples: 20,
            },
            criterion::BenchResult {
                label: "serving/warm/w4".to_string(),
                mean_ns: 10_000,
                min_ns: 9_000,
                max_ns: 12_000,
                tmin_ns: 9_200,
                median_ns: 9_900,
                p50_ns: 9_850,
                p99_ns: 11_800,
                p999_ns: 12_000,
                samples: 20,
            },
        ];
        let derived =
            vec![("qps/warm/w4".to_string(), 98765.4321), ("nan/entry".to_string(), f64::NAN)];
        let dir = std::env::temp_dir().join(format!("laca-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.json");
        criterion::write_json(&path, &results, &derived).unwrap();
        let parsed = parse_file(&path).unwrap();
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.result("serving/cold/w1").unwrap().min_ns, 900_000);
        assert_eq!(parsed.result("serving/cold/w1").unwrap().tmin_ns, 950_000);
        assert_eq!(parsed.result("serving/cold/w1").unwrap().median_ns, 1_010_000);
        assert_eq!(parsed.result("serving/cold/w1").unwrap().p99_ns, 1_190_000);
        assert_eq!(parsed.result("serving/warm/w4").unwrap().p999_ns, 12_000);
        assert_eq!(parsed.result("serving/warm/w4").unwrap().samples, 20);
        // NaN is serialized as null and skipped on read.
        assert_eq!(parsed.derived.len(), 1);
        assert!((parsed.derived("qps/warm/w4").unwrap() - 98765.4321).abs() < 1e-3);
    }

    #[test]
    fn parses_the_committed_baseline_format() {
        let text = r#"{
  "results": [
    {"label": "diffusion/greedy/1e-3", "mean_ns": 4466, "min_ns": 3913, "max_ns": 7151, "samples": 20}
  ],
  "derived": {
    "speedup/greedy/1e-3": 2.2556
  }
}
"#;
        let parsed = parse(text).unwrap();
        let entry = parsed.result("diffusion/greedy/1e-3").unwrap();
        assert_eq!(entry.min_ns, 3913);
        // Pre-statistics baselines fall back to min/mean for the new
        // order-statistic fields instead of failing to parse.
        assert_eq!(entry.tmin_ns, 3913);
        assert_eq!(entry.median_ns, 4466);
        // Percentiles fall back too: p50 follows the median, the tail
        // percentiles follow the (pessimistic) max.
        assert_eq!(entry.p50_ns, 4466);
        assert_eq!(entry.p99_ns, 7151);
        assert_eq!(entry.p999_ns, 7151);
        assert_eq!(parsed.derived("speedup/greedy/1e-3"), Some(2.2556));
    }

    #[test]
    fn compare_flags_ratio_and_label_drift() {
        let old = parse(
            r#"{"results": [
  {"label": "a", "mean_ns": 100, "min_ns": 100, "max_ns": 100, "samples": 3},
  {"label": "gone", "mean_ns": 5, "min_ns": 5, "max_ns": 5, "samples": 3}
], "derived": {}}"#,
        )
        .unwrap();
        let new = parse(
            r#"{"results": [
  {"label": "a", "mean_ns": 150, "min_ns": 140, "max_ns": 160, "tmin_ns": 145, "median_ns": 152, "samples": 20},
  {"label": "fresh", "mean_ns": 7, "min_ns": 7, "max_ns": 7, "samples": 3}
], "derived": {}}"#,
        )
        .unwrap();
        let (common, only_old, only_new) = compare(&old, &new, Metric::Min);
        assert_eq!(common.len(), 1);
        assert!((common[0].ratio - 1.4).abs() < 1e-12);
        assert_eq!(only_old, vec!["gone".to_string()]);
        assert_eq!(only_new, vec!["fresh".to_string()]);
        let (by_mean, _, _) = compare(&old, &new, Metric::Mean);
        assert!((by_mean[0].ratio - 1.5).abs() < 1e-12);
        // TrimmedMin/Median read the order-statistic fields (the old side
        // falls back to min/mean, so the comparison stays well-defined
        // against pre-statistics baselines).
        let (by_tmin, _, _) = compare(&old, &new, Metric::TrimmedMin);
        assert!((by_tmin[0].ratio - 1.45).abs() < 1e-12);
        let (by_median, _, _) = compare(&old, &new, Metric::Median);
        assert!((by_median[0].ratio - 1.52).abs() < 1e-12);
        // Percentile metrics: the old side falls back to mean/max, the
        // new side (no explicit percentiles either) does the same.
        let (by_p99, _, _) = compare(&old, &new, Metric::P99);
        assert!((by_p99[0].ratio - 1.6).abs() < 1e-12, "p99 falls back to max on both sides");
    }

    #[test]
    fn metric_names_parse() {
        assert_eq!(Metric::from_name("tmin"), Some(Metric::TrimmedMin));
        assert_eq!(Metric::from_name("p99"), Some(Metric::P99));
        assert_eq!(Metric::from_name("p999"), Some(Metric::P999));
        assert_eq!(Metric::from_name("p95"), None);
    }

    #[test]
    fn rejects_non_bench_files() {
        assert!(parse("{}").is_err());
        assert!(parse("hello world").is_err());
    }
}
