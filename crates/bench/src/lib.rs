//! Shared plumbing for the experiment binaries (one binary per paper table
//! or figure; see DESIGN.md §4 for the index).
//!
//! Every binary accepts:
//!
//! * `--seeds N` — seed nodes per dataset (paper: 500; defaults here are
//!   smaller so the whole suite finishes on a laptop),
//! * `--scale X` — multiplier on the registry's default dataset scale
//!   factors (1.0 = the documented defaults; see EXPERIMENTS.md),
//! * `--datasets a,b,c` — restrict to named datasets,
//! * `--out DIR` — also write CSVs (default `results/`).

use laca_graph::datasets::{by_name, default_scale};
use laca_graph::AttributedDataset;
use std::path::PathBuf;

pub mod bench_json;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Seeds per dataset.
    pub seeds: usize,
    /// Multiplier applied to the default dataset scale factors.
    pub scale: f64,
    /// Dataset-name filter (empty = binary's default set).
    pub datasets: Vec<String>,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Free-form parameter selector (e.g. `--param alpha`).
    pub param: Option<String>,
}

impl ExpArgs {
    /// Parses `std::env::args`, with a default seed count per binary.
    pub fn parse(default_seeds: usize) -> ExpArgs {
        let mut out = ExpArgs {
            seeds: default_seeds,
            scale: 1.0,
            datasets: Vec::new(),
            out_dir: PathBuf::from("results"),
            param: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<String> {
                *i += 1;
                args.get(*i).cloned()
            };
            match args[i].as_str() {
                "--seeds" => {
                    if let Some(v) = take(&mut i) {
                        out.seeds = v.parse().unwrap_or(out.seeds);
                    }
                }
                "--scale" => {
                    if let Some(v) = take(&mut i) {
                        out.scale = v.parse().unwrap_or(out.scale);
                    }
                }
                "--datasets" => {
                    if let Some(v) = take(&mut i) {
                        out.datasets = v.split(',').map(|s| s.trim().to_string()).collect();
                    }
                }
                "--out" => {
                    if let Some(v) = take(&mut i) {
                        out.out_dir = PathBuf::from(v);
                    }
                }
                "--param" => {
                    out.param = take(&mut i);
                }
                other => {
                    eprintln!("warning: ignoring unknown argument {other}");
                }
            }
            i += 1;
        }
        out
    }

    /// The dataset list to use: the CLI filter, or the given default.
    pub fn dataset_names(&self, default: &[&str]) -> Vec<String> {
        if self.datasets.is_empty() {
            default.iter().map(|s| s.to_string()).collect()
        } else {
            self.datasets.clone()
        }
    }
}

/// Generates a registry dataset at `default_scale × extra_scale` — or
/// loads it from the on-disk store named by `LACA_INDEX_STORE` when a
/// previous run already cached the identical spec (keyed by
/// [`laca_graph::gen::AttributedGraphSpec::fingerprint`], so any spec or
/// scale change regenerates). CI points every test/bench job at a shared
/// cached store directory; generation is bit-identical for any thread
/// count, so the cache is safely shared across matrix legs.
pub fn load_dataset(name: &str, extra_scale: f64) -> AttributedDataset {
    let scale = default_scale(name) * extra_scale;
    let spec = by_name(name, scale)
        .unwrap_or_else(|| panic!("unknown dataset '{name}' (see laca_graph::datasets)"));
    let t0 = std::time::Instant::now();
    let ds = laca_persist::cached_dataset(&spec, &format!("{name}-like"))
        .expect("dataset generation failed");
    let stats = ds.stats();
    eprintln!(
        "[gen] {name}: n={} m={} d={} |Ys|~{:.0} ({:.1}s)",
        stats.n,
        stats.m,
        stats.dim,
        stats.avg_cluster_size,
        t0.elapsed().as_secs_f64()
    );
    ds
}

/// Prints a section header in the experiment binaries' output.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}
