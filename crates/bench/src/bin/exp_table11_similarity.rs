//! **Table XI**: alternative similarity measures inside LACA — the
//! brute-force Jaccard and Pearson SNAS against the cosine /
//! exponential-cosine SNAS. Like the paper, the quadratic-cost
//! alternatives run only on the small datasets.
//!
//! `cargo run --release -p laca-bench --bin exp_table11_similarity -- --seeds 10`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::extract::top_k_cluster;
use laca_core::snas::AltMetricFn;
use laca_core::variants::{alt_snas_bdd, AltSnasOracle};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::metrics::precision;
use laca_eval::table::{fmt3, Table};

fn main() {
    let args = ExpArgs::parse(10);
    // Quadratic denominators: small datasets only, like the paper.
    let names = args.dataset_names(&["cora", "blogcl", "flickr"]);
    let mut headers = vec!["Method".to_string()];
    headers.extend(names.iter().cloned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows = vec![
        vec!["LACA(C)".to_string()],
        vec!["LACA(E)".to_string()],
        vec!["LACA(Jaccard)".to_string()],
        vec!["LACA(Pearson)".to_string()],
    ];

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0x7ABB);
        let params = LacaParams::new(1e-7);
        // LACA (C) and (E).
        for (row, metric) in [(0usize, MetricFn::Cosine), (1, MetricFn::ExpCosine { delta: 1.0 })] {
            let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, metric)).unwrap();
            let engine = Laca::new(&ds.graph, Some(&tnam), params.clone()).unwrap();
            let mut acc = 0.0;
            for &s in &seeds {
                let truth = ds.ground_truth(s);
                acc += precision(&engine.cluster(s, truth.len()).unwrap_or_default(), truth);
            }
            rows[row].push(fmt3(acc / seeds.len() as f64));
        }
        // Brute-force alternatives.
        for (row, metric) in [(2usize, AltMetricFn::Jaccard), (3, AltMetricFn::Pearson)] {
            let t0 = std::time::Instant::now();
            let oracle = AltSnasOracle::new(&ds.attributes, metric).unwrap();
            eprintln!("[{name}] {metric:?} denominators in {:?}", t0.elapsed());
            let mut acc = 0.0;
            for &s in &seeds {
                let truth = ds.ground_truth(s);
                let rho = alt_snas_bdd(&ds.graph, &oracle, s, &params).unwrap_or_default();
                acc += precision(&top_k_cluster(&rho, s, truth.len()), truth);
            }
            rows[row].push(fmt3(acc / seeds.len() as f64));
        }
        eprintln!("[{name}] done");
    }
    for row in rows {
        table.add_row(row);
    }
    banner("Table XI analogue: alternative similarity measures inside LACA");
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("table11_similarity.csv")).expect("write csv");
}
