//! **Tables VIII–IX**: LGC quality on graphs *without* attributes —
//! LACA (w/o SNAS) vs the four strong structural baselines (PR-Nibble,
//! HK-Relax, CRD, p-Norm FD) on com-DBLP/com-Amazon/com-Orkut analogues.
//!
//! `cargo run --release -p laca-bench --bin exp_table9_nonattr -- --seeds 25`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_eval::harness::{evaluate_parallel, sample_seeds};
use laca_eval::methods::MethodSpec;
use laca_eval::table::{fmt3, Table};
use laca_eval::EvalComputeConfig;
use laca_graph::datasets::NON_ATTRIBUTED_NAMES;

fn main() {
    let args = ExpArgs::parse(25);
    let names = args.dataset_names(&NON_ATTRIBUTED_NAMES);
    let cfg = EvalComputeConfig::default();
    let methods = [
        MethodSpec::PrNibble,
        MethodSpec::HkRelax,
        MethodSpec::Crd,
        MethodSpec::PNormFd,
        MethodSpec::LacaWoSnas,
    ];
    // Print the dataset statistics first (Table VIII).
    let mut stats_table = Table::new(&["Dataset", "n", "m", "|Ys|"]);
    let mut headers = vec!["Method".to_string()];
    headers.extend(names.iter().cloned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.label()]).collect();
    for name in &names {
        let ds = load_dataset(name, args.scale);
        let st = ds.stats();
        stats_table.add_row(vec![
            name.clone(),
            st.n.to_string(),
            st.m.to_string(),
            format!("{:.0}", st.avg_cluster_size),
        ]);
        let seeds = sample_seeds(&ds, args.seeds, 0x7AB9);
        for (row, spec) in methods.iter().enumerate() {
            let cell = match spec.prepare(&ds, &cfg) {
                Ok(prepared) => {
                    let out = evaluate_parallel(&prepared, &ds, &seeds);
                    eprintln!("[{name}] {:<16} precision {:.3}", out.label, out.avg_precision);
                    fmt3(out.avg_precision)
                }
                Err(e) => {
                    eprintln!("[{name}] {} failed: {e}", spec.label());
                    "err".into()
                }
            };
            rows[row].push(cell);
        }
    }
    for row in rows {
        table.add_row(row);
    }
    banner("Table VIII analogue: non-attributed dataset statistics");
    println!("{}", stats_table.render());
    banner("Table IX analogue: precision on non-attributed graphs");
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("table9_nonattr.csv")).expect("write csv");
}
