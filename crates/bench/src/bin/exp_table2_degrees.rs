//! **Table II**: average node degree of the diffusion output ("local
//! cluster" = support of `q`), greedy vs non-greedy, versus the global
//! average degree — the paper's evidence that GreedyDiffuse is biased
//! toward low-degree nodes.
//!
//! `cargo run --release -p laca-bench --bin exp_table2_degrees`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_diffusion::{greedy_diffuse, nongreedy_diffuse, DiffusionParams, SparseVec};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;

fn main() {
    let args = ExpArgs::parse(15);
    let names = args.dataset_names(&["pubmed", "yelp"]);
    let epsilon = 1e-6;
    let mut table = Table::new(&["Dataset", "Global avg. degree", "Greedy", "Non-greedy"]);
    for name in &names {
        let ds = load_dataset(name, args.scale);
        let g = &ds.graph;
        let global = 2.0 * g.m() as f64 / g.n() as f64;
        let seeds = sample_seeds(&ds, args.seeds, 0x7AB2);
        let params = DiffusionParams::new(0.8, epsilon);
        let mut deg = [0.0f64; 2];
        for &s in &seeds {
            let f = SparseVec::unit(s);
            let outs = [
                greedy_diffuse(g, &f, &params).unwrap(),
                nongreedy_diffuse(g, &f, &params).unwrap(),
            ];
            for (acc, out) in deg.iter_mut().zip(&outs) {
                let supp = out.reserve.support_size().max(1) as f64;
                *acc += out.reserve.volume(g) / supp / seeds.len() as f64;
            }
        }
        table.add_row(vec![
            name.clone(),
            format!("{global:.2}"),
            format!("{:.2}", deg[0]),
            format!("{:.2}", deg[1]),
        ]);
    }
    banner(&format!("Table II analogue: avg. node degree of diffusion output (eps = {epsilon})"));
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("table2_degrees.csv")).expect("write csv");
}
