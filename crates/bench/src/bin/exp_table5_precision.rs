//! **Table V**: average precision of all methods on the 8 attributed
//! dataset analogues, evaluated with `|Cs| = |Ys|` against planted ground
//! truth. Methods that exceed their scalability caps on a dataset print
//! `-`, mirroring the paper's exclusions.
//!
//! `cargo run --release -p laca-bench --bin exp_table5_precision -- --seeds 30`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_eval::harness::{evaluate_parallel, sample_seeds};
use laca_eval::methods::MethodSpec;
use laca_eval::table::{fmt3, Table};
use laca_eval::EvalComputeConfig;
use laca_graph::datasets::ATTRIBUTED_NAMES;

fn main() {
    let args = ExpArgs::parse(25);
    let names = args.dataset_names(&ATTRIBUTED_NAMES);
    let cfg = EvalComputeConfig::default();
    let methods = MethodSpec::table_v_rows();

    let mut headers: Vec<&str> = vec!["Method"];
    let name_strs: Vec<String> = names.clone();
    headers.extend(name_strs.iter().map(String::as_str));
    let mut table = Table::new(&headers);
    let mut cells: Vec<Vec<String>> = methods.iter().map(|m| vec![m.label()]).collect();

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0xBEEF);
        for (row, spec) in methods.iter().enumerate() {
            let cell = match spec.prepare(&ds, &cfg) {
                Ok(prepared) => {
                    let out = evaluate_parallel(&prepared, &ds, &seeds);
                    eprintln!(
                        "[{name}] {:<18} precision {:.3} (prep {:?}, online {:?}/q)",
                        out.label, out.avg_precision, out.prep_time, out.avg_online_time
                    );
                    fmt3(out.avg_precision)
                }
                Err(laca_eval::EvalError::NotApplicable { .. }) => "-".to_string(),
                Err(e) => {
                    eprintln!("[{name}] {} failed: {e}", spec.label());
                    "err".to_string()
                }
            };
            cells[row].push(cell);
        }
    }
    for row in cells {
        table.add_row(row);
    }
    banner("Table V analogue: average precision (|Cs| = |Ys|)");
    println!("{}", table.render());
    let suffix = if args.datasets.is_empty() { "all".to_string() } else { args.datasets.join("_") };
    let path = args.out_dir.join(format!("table5_precision_{suffix}.csv"));
    table.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
