//! **Table VI**: ablation study — best precision of LACA (C) and LACA (E)
//! after removing the k-SVD, AdaptiveDiffuse, or the SNAS.
//!
//! `cargo run --release -p laca-bench --bin exp_table6_ablation -- --seeds 20`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::variants::{variant_cluster, LacaVariant};
use laca_core::{LacaParams, MetricFn, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::metrics::precision;
use laca_eval::table::{fmt3, Table};
use laca_graph::datasets::ATTRIBUTED_NAMES;

fn main() {
    let args = ExpArgs::parse(20);
    let names = args.dataset_names(&ATTRIBUTED_NAMES);
    let metrics = [("C", MetricFn::Cosine), ("E", MetricFn::ExpCosine { delta: 1.0 })];
    let mut headers = vec!["Method".to_string()];
    headers.extend(names.iter().cloned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mlabel, _) in metrics {
        rows.push(vec![format!("LACA({mlabel})")]);
        for variant in &LacaVariant::ALL[1..] {
            rows.push(vec![format!("  {}", variant.label())]);
        }
    }
    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0x7AB6);
        let params = LacaParams::new(1e-7);
        let mut row_idx = 0;
        for (mlabel, metric) in metrics {
            let base_cfg = TnamConfig::new(32, metric);
            for variant in LacaVariant::ALL {
                let tnam = variant.build_tnam(&ds.attributes, &base_cfg).unwrap();
                let mut acc = 0.0;
                for &s in &seeds {
                    let truth = ds.ground_truth(s);
                    let cluster =
                        variant_cluster(&ds.graph, tnam.as_ref(), variant, &params, s, truth.len())
                            .unwrap_or_default();
                    acc += precision(&cluster, truth);
                }
                let p = acc / seeds.len() as f64;
                eprintln!("[{name}] LACA({mlabel}) {}: {p:.3}", variant.label());
                rows[row_idx].push(fmt3(p));
                row_idx += 1;
            }
        }
    }
    for row in rows {
        table.add_row(row);
    }
    banner("Table VI analogue: ablation study (precision)");
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("table6_ablation.csv")).expect("write csv");
}
