//! **Fig. 9**: parameter sensitivity of LACA (C) and LACA (E) — precision
//! when sweeping the restart factor `α` (a,b), the balance `σ` (c,d) and
//! the TNAM dimension `k` (e,f) on the five small/medium datasets.
//!
//! `cargo run --release -p laca-bench --bin exp_fig9_params -- --param alpha`
//! (`--param sigma`, `--param k`, or no `--param` for all three sweeps)

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::metrics::precision;
use laca_eval::table::{fmt3, Table};
use laca_graph::AttributedDataset;

fn avg_precision(
    ds: &AttributedDataset,
    tnam: &Tnam,
    params: &LacaParams,
    seeds: &[laca_graph::NodeId],
) -> f64 {
    let engine = Laca::new(&ds.graph, Some(tnam), params.clone()).unwrap();
    let mut acc = 0.0;
    for &s in seeds {
        let truth = ds.ground_truth(s);
        let cluster = engine.cluster(s, truth.len()).unwrap_or_default();
        acc += precision(&cluster, truth);
    }
    acc / seeds.len() as f64
}

fn main() {
    let args = ExpArgs::parse(15);
    let names = args.dataset_names(&["cora", "pubmed", "blogcl", "flickr", "arxiv"]);
    let sweeps: Vec<&str> = match args.param.as_deref() {
        Some(p) => vec![match p {
            "alpha" => "alpha",
            "sigma" => "sigma",
            "k" => "k",
            other => panic!("unknown --param {other} (alpha|sigma|k)"),
        }],
        None => vec!["alpha", "sigma", "k"],
    };
    let metrics = [("C", MetricFn::Cosine), ("E", MetricFn::ExpCosine { delta: 1.0 })];

    for sweep in sweeps {
        for (mlabel, metric) in metrics {
            let mut headers = vec![sweep.to_string()];
            headers.extend(names.iter().cloned());
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = Table::new(&header_refs);
            // value grid per sweep
            let values: Vec<f64> = match sweep {
                "alpha" => (0..10).map(|i| i as f64 / 10.0).collect(),
                "sigma" => (0..=10).map(|i| i as f64 / 10.0).collect(),
                _ => vec![8.0, 16.0, 32.0, 64.0, 128.0, -1.0], // -1 = d
            };
            let mut rows: Vec<Vec<String>> = values
                .iter()
                .map(|&v| {
                    vec![if v < 0.0 {
                        "d".to_string()
                    } else if sweep == "k" {
                        format!("{v:.0}")
                    } else {
                        format!("{v:.1}")
                    }]
                })
                .collect();
            for name in &names {
                let ds = load_dataset(name, args.scale);
                let seeds = sample_seeds(&ds, args.seeds, 0xF19);
                match sweep {
                    "k" => {
                        for (ri, &v) in values.iter().enumerate() {
                            let k = if v < 0.0 { ds.attributes.dim() } else { v as usize };
                            let tnam =
                                Tnam::build(&ds.attributes, &TnamConfig::new(k, metric)).unwrap();
                            let p = avg_precision(&ds, &tnam, &LacaParams::new(1e-7), &seeds);
                            rows[ri].push(fmt3(p));
                            eprintln!("[{name}] {mlabel} k={k}: {p:.3}");
                        }
                    }
                    _ => {
                        let tnam =
                            Tnam::build(&ds.attributes, &TnamConfig::new(32, metric)).unwrap();
                        for (ri, &v) in values.iter().enumerate() {
                            let params = match sweep {
                                "alpha" => LacaParams::new(1e-7).with_alpha(v.max(0.01)),
                                _ => LacaParams::new(1e-7).with_sigma(v),
                            };
                            let p = avg_precision(&ds, &tnam, &params, &seeds);
                            rows[ri].push(fmt3(p));
                            eprintln!("[{name}] {mlabel} {sweep}={v:.1}: {p:.3}");
                        }
                    }
                }
            }
            for row in rows {
                table.add_row(row);
            }
            banner(&format!("Fig. 9 analogue: precision vs {sweep} in LACA ({mlabel})"));
            println!("{}", table.render());
            table
                .write_csv(&args.out_dir.join(format!("fig9_{sweep}_laca_{mlabel}.csv")))
                .expect("write csv");
        }
    }
}
