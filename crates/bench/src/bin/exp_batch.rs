//! **Batched execution scenario**: multi-seed throughput of the batched
//! Algo. 4 path (`Laca::bdd_batch_with_stats_in`) versus the serial
//! engine, plus the sweep-aligned upper bound of the raw batched
//! diffusion kernel — with an online bit-identity check (batched answers
//! must reproduce the serial bits and per-seed push counts exactly).
//! `benches/batch.rs` is its committed-baseline twin.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_batch -- --seeds 32
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{Laca, LacaParams, MetricFn, Tnam};
use laca_diffusion::{
    adaptive_diffuse_in, batch_diffuse_in, BatchMode, BatchWorkspace, DiffusionParams,
    DiffusionWorkspace, SparseVec,
};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use std::time::Instant;

const WIDTHS: [usize; 3] = [1, 4, 16];
/// Lanes in the aligned-kernel leg (the full batch width).
const ALIGNED_LANES: usize = 16;

fn main() {
    let args = ExpArgs::parse(32);
    let names = args.dataset_names(&["pubmed"]);
    let params = LacaParams::new(1e-4);
    let tnam_config = TnamConfig::new(32, MetricFn::Cosine);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let pool = sample_seeds(&ds, args.seeds.max(2), 0xBA7C);
        let tnam = Tnam::build(&ds.attributes, &tnam_config).expect("tnam");
        let engine = Laca::new(&ds.graph, Some(&tnam), params.clone()).expect("engine");
        let mut sws = DiffusionWorkspace::for_graph(&ds.graph);
        let mut bws = BatchWorkspace::for_graph(&ds.graph, ALIGNED_LANES);

        // Bit-identity: every batched answer must match its serial twin —
        // same ρ' bits, same push counts.
        for chunk in pool.chunks(ALIGNED_LANES).take(2) {
            let batch = engine.bdd_batch_with_stats_in(chunk, &mut bws);
            for (&s, result) in chunk.iter().zip(batch) {
                let (rho_b, stats_b) = result.expect("batched query");
                let (rho_s, stats_s) = engine.bdd_with_stats_in(s, &mut sws).expect("serial query");
                assert_eq!(
                    rho_b.to_sorted_pairs(),
                    rho_s.to_sorted_pairs(),
                    "seed {s}: batched ρ' diverged from serial"
                );
                assert_eq!(stats_b.bdd.push_operations, stats_s.bdd.push_operations);
                assert_eq!(stats_b.bdd.iterations, stats_s.bdd.iterations);
            }
        }
        eprintln!("[{name}] bit-identity vs serial: ok ({} seeds)", pool.len().min(32));

        let mut table = Table::new(&["regime", "serial q/s", "batched q/s", "speedup"]);

        // Distinct seeds through the full three-step query path at each
        // width.
        let t0 = Instant::now();
        for &s in &pool {
            std::hint::black_box(engine.bdd_with_stats_in(s, &mut sws).expect("serial"));
        }
        let serial_qps = pool.len() as f64 / t0.elapsed().as_secs_f64();
        for &width in &WIDTHS {
            let t0 = Instant::now();
            for chunk in pool.chunks(width) {
                for result in engine.bdd_batch_with_stats_in(chunk, &mut bws) {
                    std::hint::black_box(result.expect("batched"));
                }
            }
            let batch_qps = pool.len() as f64 / t0.elapsed().as_secs_f64();
            table.add_row(vec![
                format!("distinct B={width}"),
                format!("{serial_qps:.0}"),
                format!("{batch_qps:.0}"),
                format!("{:.2}x", batch_qps / serial_qps),
            ]);
        }

        // Sweep-aligned upper bound: one hot seed across every lane of
        // the raw diffusion kernel (dense AVX2 lane blocks throughout).
        let dp = DiffusionParams::new(0.8, params.epsilon);
        let hot = SparseVec::unit(pool[0]);
        let lanes: Vec<&SparseVec> = (0..ALIGNED_LANES).map(|_| &hot).collect();
        let eps = vec![params.epsilon; ALIGNED_LANES];
        let reps = 4usize;
        let t0 = Instant::now();
        for _ in 0..reps * ALIGNED_LANES {
            std::hint::black_box(
                adaptive_diffuse_in(&ds.graph, &hot, &dp, &mut sws).expect("serial diffuse"),
            );
        }
        let aligned_serial = (reps * ALIGNED_LANES) as f64 / t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                batch_diffuse_in(&ds.graph, &lanes, &eps, &dp, BatchMode::Adaptive, &mut bws)
                    .expect("batched diffuse"),
            );
        }
        let aligned_batch = (reps * ALIGNED_LANES) as f64 / t0.elapsed().as_secs_f64();
        table.add_row(vec![
            format!("aligned kernel B={ALIGNED_LANES}"),
            format!("{aligned_serial:.0}"),
            format!("{aligned_batch:.0}"),
            format!("{:.2}x", aligned_batch / aligned_serial),
        ]);

        banner(&format!(
            "Batched execution on {name} (ε = {:.0e}, pool = {})",
            params.epsilon,
            pool.len()
        ));
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("batch_{name}.csv"))).expect("write csv");
    }
}
