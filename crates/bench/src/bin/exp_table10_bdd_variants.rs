//! **Table X**: the alternative BDD estimators (RS-RS-RS, R-RS-RS,
//! RS-R-RS, RS-RS-R) against LACA's BDD — precision on the attributed
//! analogues. Expectation: every alternative degrades substantially
//! (over-incorporating attribute transitions biases the walks off the
//! local cluster).
//!
//! `cargo run --release -p laca-bench --bin exp_table10_bdd_variants -- --seeds 15`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::extract::top_k_cluster;
use laca_core::variants::{bdd_variant_score, snas_reweighted_graph, BddVariant};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::metrics::precision;
use laca_eval::table::{fmt3, Table};
use laca_graph::datasets::ATTRIBUTED_NAMES;

fn main() {
    let args = ExpArgs::parse(15);
    let names = args.dataset_names(&ATTRIBUTED_NAMES);
    let metrics = [("C", MetricFn::Cosine), ("E", MetricFn::ExpCosine { delta: 1.0 })];
    let mut headers = vec!["Method".to_string()];
    headers.extend(names.iter().cloned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mlabel, _) in metrics {
        rows.push(vec![format!("LACA({mlabel})")]);
        for variant in BddVariant::ALL {
            rows.push(vec![format!("LACA({mlabel})-{}", variant.label())]);
        }
    }

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0x7ABA);
        let params = LacaParams::new(1e-7);
        let mut row_idx = 0;
        for (mlabel, metric) in metrics {
            let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, metric)).unwrap();
            let reweighted = snas_reweighted_graph(&ds.graph, &tnam, 1e-9);
            // LACA row.
            let engine = Laca::new(&ds.graph, Some(&tnam), params.clone()).unwrap();
            let mut acc = 0.0;
            for &s in &seeds {
                let truth = ds.ground_truth(s);
                acc += precision(&engine.cluster(s, truth.len()).unwrap_or_default(), truth);
            }
            let p = acc / seeds.len() as f64;
            eprintln!("[{name}] LACA({mlabel}): {p:.3}");
            rows[row_idx].push(fmt3(p));
            row_idx += 1;
            // Variant rows.
            for variant in BddVariant::ALL {
                let mut acc = 0.0;
                for &s in &seeds {
                    let truth = ds.ground_truth(s);
                    let rho = bdd_variant_score(&ds.graph, &reweighted, variant, s, &params)
                        .unwrap_or_default();
                    let cluster = top_k_cluster(&rho, s, truth.len());
                    acc += precision(&cluster, truth);
                }
                let p = acc / seeds.len() as f64;
                eprintln!("[{name}] LACA({mlabel})-{}: {p:.3}", variant.label());
                rows[row_idx].push(fmt3(p));
                row_idx += 1;
            }
        }
    }
    for row in rows {
        table.add_row(row);
    }
    banner("Table X analogue: alternative BDD estimators (precision)");
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("table10_bdd_variants.csv")).expect("write csv");
}
