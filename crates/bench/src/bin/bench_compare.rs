//! Diffs two `BENCH_*.json` files (e.g. a committed baseline against a
//! fresh run) and flags regressions beyond a threshold.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin bench_compare -- \
//!     BENCH_diffusion.json /tmp/bench_diffusion.json --threshold 2.0
//! ```
//!
//! Exit code 0 = no regression, 1 = at least one label regressed, 2 =
//! usage/parse error. CI runs this as a **blocking** gate
//! (`scripts/bench_compare.sh`, per-suite thresholds): the default
//! comparison metric is the trimmed minimum — a 10th-percentile order
//! statistic over ≥ 20 samples that one lucky (or one preempted) sample
//! cannot move — and the thresholds are generous (2×), so shared-runner
//! noise stays below the bar while real regressions trip it.

use laca_bench::bench_json::{compare, parse_file, Metric};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    old: PathBuf,
    new: PathBuf,
    threshold: f64,
    metric: Metric,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare OLD.json NEW.json [--threshold R]\n\
         \x20                  [--metric tmin|median|min|mean|p50|p99|p999]\n\
         \n\
         Flags labels whose NEW/OLD time ratio exceeds R (default 2.0;\n\
         improvements beyond 1/R are reported too, informationally).\n\
         Default metric: tmin, the 10th-percentile order statistic\n\
         (baselines without it fall back to the raw min). The percentile\n\
         metrics gate tail latency — the overload suite compares p99\n\
         (pre-percentile baselines fall back to median/max)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 2.0f64;
    let mut metric = Metric::TrimmedMin;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--metric" => {
                i += 1;
                metric =
                    args.get(i).and_then(|name| Metric::from_name(name)).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if positional.len() != 2 || threshold <= 1.0 {
        usage();
    }
    Args {
        old: PathBuf::from(&positional[0]),
        new: PathBuf::from(&positional[1]),
        threshold,
        metric,
    }
}

fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let (old, new) = match (parse_file(&args.old), parse_file(&args.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };
    let (mut common, only_old, only_new) = compare(&old, &new, args.metric);
    common.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).unwrap());

    let metric_name = match args.metric {
        Metric::Min => "min",
        Metric::Mean => "mean",
        Metric::TrimmedMin => "tmin",
        Metric::Median => "median",
        Metric::P50 => "p50",
        Metric::P99 => "p99",
        Metric::P999 => "p999",
    };
    println!(
        "comparing {} (baseline) vs {} ({} times, threshold {:.2}x)\n",
        args.old.display(),
        args.new.display(),
        metric_name,
        args.threshold
    );
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for c in &common {
        let verdict = if c.ratio > args.threshold {
            regressions += 1;
            "REGRESSION"
        } else if c.ratio < 1.0 / args.threshold {
            improvements += 1;
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<42} {:>10} -> {:>10}  {:>6.2}x  {verdict}",
            c.label,
            fmt_ns(c.old_ns),
            fmt_ns(c.new_ns),
            c.ratio
        );
    }
    for label in &only_old {
        println!("{label:<42} (only in baseline)");
    }
    for label in &only_new {
        println!("{label:<42} (new benchmark, no baseline)");
    }
    println!(
        "\n{} labels compared: {regressions} regression(s), {improvements} improvement(s), \
         {} baseline-only, {} new",
        common.len(),
        only_old.len(),
        only_new.len()
    );
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
