//! **Table VII**: average conductance and WCSS of the predicted clusters
//! vs the ground-truth clusters, for every applicable method.
//!
//! `cargo run --release -p laca-bench --bin exp_table7_cond_wcss -- --seeds 15`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_eval::harness::{evaluate_parallel, sample_seeds};
use laca_eval::methods::MethodSpec;
use laca_eval::metrics::{conductance, wcss};
use laca_eval::table::{fmt3, Table};
use laca_eval::EvalComputeConfig;
use laca_graph::datasets::ATTRIBUTED_NAMES;

fn main() {
    let args = ExpArgs::parse(15);
    let names = args.dataset_names(&ATTRIBUTED_NAMES);
    let cfg = EvalComputeConfig::default();
    let methods = MethodSpec::table_v_rows();

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0x7AB7);
        let mut table = Table::new(&["Method", "Conductance", "WCSS"]);
        // Ground-truth row first, averaged over the sampled seeds' clusters.
        let (mut gc, mut gw) = (0.0, 0.0);
        for &s in &seeds {
            let truth = ds.ground_truth(s);
            gc += conductance(&ds.graph, truth) / seeds.len() as f64;
            gw += wcss(&ds.attributes, truth) / seeds.len() as f64;
        }
        table.add_row(vec!["Ground-truth".into(), fmt3(gc), fmt3(gw)]);
        for spec in &methods {
            match spec.prepare(&ds, &cfg) {
                Ok(prepared) => {
                    let out = evaluate_parallel(&prepared, &ds, &seeds);
                    table.add_row(vec![
                        out.label.clone(),
                        fmt3(out.avg_conductance),
                        fmt3(out.avg_wcss),
                    ]);
                    eprintln!(
                        "[{name}] {:<18} cond {:.3} wcss {:.3}",
                        out.label, out.avg_conductance, out.avg_wcss
                    );
                }
                Err(_) => table.add_row(vec![spec.label(), "-".into(), "-".into()]),
            }
        }
        banner(&format!("Table VII analogue: conductance & WCSS ({name})"));
        println!("{}", table.render());
        table
            .write_csv(&args.out_dir.join(format!("table7_cond_wcss_{name}.csv")))
            .expect("write csv");
    }
}
