//! **Persistence scenario**: the cold-start path the on-disk index store
//! exists for. Per dataset: build the `ClusterIndex` from scratch (what a
//! service restart pays without a store), publish it to an
//! [`laca_persist::IndexStore`], load it back through the full
//! fail-closed validation pipeline, and register the loaded index on a
//! [`laca_service::ServiceRouter`] straight from disk. The run verifies
//! the loaded index answers **bit-identically** (rho f64 bits and push
//! counts) on sampled seeds, then reports the wall-clock ledger: rebuild
//! vs load time, image size, and the resulting startup speedup.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_persist -- --seeds 8
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use laca_persist::{IndexStore, RouterStoreExt};
use laca_service::{ClusterIndex, ServiceConfig, ServiceRouter};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse(8);
    let names = args.dataset_names(&["cora", "pubmed"]);
    let params = LacaParams::new(1e-4);
    let tnam_config = TnamConfig::new(32, MetricFn::Cosine);

    let store_dir = std::env::temp_dir().join(format!("laca-exp-persist-{}", std::process::id()));
    let store = IndexStore::open(&store_dir).expect("open store");

    let mut table = Table::new(&[
        "dataset",
        "n",
        "rebuild s",
        "save s",
        "load s",
        "speedup",
        "image MB",
        "seeds checked",
    ]);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds.max(2), 0x9E51);

        // Cold rebuild: the full offline pipeline (TNAM + index plumbing).
        let t0 = Instant::now();
        let index = ClusterIndex::from_dataset(&ds, &tnam_config, params.clone())
            .expect("index construction");
        let rebuild_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let path = store.save(&index).expect("publish index");
        let save_s = t0.elapsed().as_secs_f64();
        let image_mb = std::fs::metadata(&path).expect("stat image").len() as f64 / 1e6;

        let t0 = Instant::now();
        let loaded = store.load(index.dataset(), index.fingerprint()).expect("load index");
        let load_s = t0.elapsed().as_secs_f64();

        // Bit-identity check: the loaded index must be indistinguishable
        // from the freshly built one on every probe — same rho f64 bit
        // patterns, same push counts.
        let (built_engine, loaded_engine) = (index.engine(), loaded.engine());
        for &seed in &seeds {
            let (rho_a, stats_a) = built_engine.bdd_with_stats(seed).expect("built query");
            let (rho_b, stats_b) = loaded_engine.bdd_with_stats(seed).expect("loaded query");
            let bits = |pairs: Vec<(u32, f64)>| -> Vec<(u32, u64)> {
                pairs.into_iter().map(|(node, v)| (node, v.to_bits())).collect()
            };
            assert_eq!(
                bits(rho_a.to_sorted_pairs()),
                bits(rho_b.to_sorted_pairs()),
                "{name}: rho drifted through persistence at seed {seed}"
            );
            assert_eq!(
                stats_a.bdd.push_operations, stats_b.bdd.push_operations,
                "{name}: push count drifted through persistence at seed {seed}"
            );
        }

        // Startup-from-disk path: the router registers the stored image
        // directly and serves the same answers.
        let router = ServiceRouter::new();
        let key = router
            .register_from_store(
                &store,
                index.dataset(),
                index.fingerprint(),
                ServiceConfig::default().with_workers(1),
            )
            .expect("register from store");
        let probe = seeds[0];
        let answer = router.submit(&key, probe).expect("submit").wait().expect("serve");
        let direct = built_engine.bdd(probe).expect("direct query");
        assert_eq!(
            answer.rho.to_sorted_pairs(),
            direct.to_sorted_pairs(),
            "{name}: served answer differs from direct computation"
        );
        router.drain();

        eprintln!(
            "[{name}] rebuild {rebuild_s:.3}s, load {load_s:.3}s ({:.1}x), image {image_mb:.2} MB",
            rebuild_s / load_s
        );
        table.add_row(vec![
            name.clone(),
            ds.graph.n().to_string(),
            format!("{rebuild_s:.3}"),
            format!("{save_s:.3}"),
            format!("{load_s:.3}"),
            format!("{:.1}", rebuild_s / load_s),
            format!("{image_mb:.2}"),
            seeds.len().to_string(),
        ]);
    }

    std::fs::remove_dir_all(&store_dir).ok();
    banner("Index persistence: cold rebuild vs store load (bit-identical answers)");
    println!("{}", table.render());
    table.write_csv(&args.out_dir.join("persist.csv")).expect("write csv");
}
