//! **Fig. 5**: residual sum `‖r‖₁` after each iteration, greedy vs
//! non-greedy, on PubMed-like (ε = 1e-5) and ArXiv-like (ε = 1e-7) — the
//! motivation for AdaptiveDiffuse.
//!
//! `cargo run --release -p laca-bench --bin exp_fig5_convergence`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_diffusion::{greedy_diffuse, nongreedy_diffuse, DiffusionParams, SparseVec};
use laca_eval::table::Table;

fn main() {
    let args = ExpArgs::parse(1);
    let configs = [("pubmed", 1e-5f64), ("arxiv", 1e-7f64)];
    for (name, eps) in configs {
        if !args.datasets.is_empty() && !args.datasets.iter().any(|d| d == name) {
            continue;
        }
        let ds = load_dataset(name, args.scale);
        let f = SparseVec::unit(0);
        let params = DiffusionParams::new(0.8, eps).with_residual_recording();
        let greedy = greedy_diffuse(&ds.graph, &f, &params).unwrap();
        let nongreedy = nongreedy_diffuse(&ds.graph, &f, &params).unwrap();
        banner(&format!("Fig. 5 analogue: residual sum vs iteration ({name}, eps = {eps:.0e})"));
        let mut table = Table::new(&["Iteration", "Greedy ||r||1", "Non-greedy ||r||1"]);
        let rows = greedy.stats.residual_history.len().max(nongreedy.stats.residual_history.len());
        // Sample ~25 evenly spaced iterations for readability.
        let step = (rows / 25).max(1);
        for it in (0..rows).step_by(step) {
            let g = greedy
                .stats
                .residual_history
                .get(it)
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "(done)".into());
            let n = nongreedy
                .stats
                .residual_history
                .get(it)
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "(done)".into());
            table.add_row(vec![(it + 1).to_string(), g, n]);
        }
        table.add_row(vec![
            "total iters".into(),
            greedy.stats.iterations.to_string(),
            nongreedy.stats.iterations.to_string(),
        ]);
        println!("{}", table.render());
        table
            .write_csv(&args.out_dir.join(format!("fig5_convergence_{name}.csv")))
            .expect("write csv");
    }
}
