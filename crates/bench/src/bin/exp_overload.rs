//! **Overload scenario**: behaviour of the serving layer past saturation —
//! the three [`AdmissionPolicy`] variants under an open burst, deadline
//! expiry under a slow queue, and a graceful [`ServiceRouter::drain`] with
//! a live backlog. This is the robustness twin of `exp_serving`: instead
//! of asking "how fast when healthy", it asks "what degrades, and does
//! the accounting still balance". `benches/overload.rs` is its
//! committed-baseline twin (`BENCH_overload.json`).
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_overload -- --seeds 24
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use laca_graph::NodeId;
use laca_service::{
    AdmissionPolicy, ClusterIndex, QueryHandle, QueryOptions, QueryService, ServiceConfig,
    ServiceError, ServiceRouter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Keeps every policy leg contended: one worker, a queue much shorter
/// than the burst, so admission — not compute — decides each query's fate.
const QUEUE_DEPTH: usize = 4;

/// Nearest-rank percentile over an unsorted latency sample (the bench
/// harness's `percentile_ns` lives in a dev-dependency, out of reach of
/// a bin target).
fn p99_ms(latencies_ns: &mut [u128]) -> f64 {
    if latencies_ns.is_empty() {
        return 0.0;
    }
    latencies_ns.sort_unstable();
    let rank = (latencies_ns.len() * 99).div_ceil(100).max(1);
    latencies_ns[rank - 1] as f64 / 1e6
}

/// Skewed workload over the seed pool: `min` of two uniform draws leans
/// toward the front of the pool, giving SmartShed hot keys to coalesce
/// without hand-placing duplicates.
fn skewed_workload(pool: &[NodeId], len: usize, rng_seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0..pool.len());
            let b = rng.gen_range(0..pool.len());
            pool[a.min(b)]
        })
        .collect()
}

struct LegOutcome {
    served: u64,
    shed: u64,
    hits_coalesced: u64,
    p99_ms: f64,
    wall: Duration,
}

/// Fires the whole workload as fast as admission allows (Block parks the
/// submitter; shedding policies reject instead), then resolves every
/// handle. Per-query latency is submit-call start to resolution.
fn run_policy_leg(service: &QueryService, workload: &[NodeId]) -> LegOutcome {
    let t0 = Instant::now();
    let mut handles: Vec<(Instant, QueryHandle)> = Vec::with_capacity(workload.len());
    for &seed in workload {
        handles.push((Instant::now(), service.submit(seed)));
    }
    let mut latencies_ns = Vec::with_capacity(handles.len());
    let mut served = 0u64;
    let mut shed = 0u64;
    for (submitted, handle) in handles {
        match handle.wait() {
            Ok(_) => {
                served += 1;
                latencies_ns.push(submitted.elapsed().as_nanos());
            }
            Err(ServiceError::Overloaded) => shed += 1,
            Err(e) => panic!("overload leg: unexpected outcome {e}"),
        }
    }
    let stats = service.stats();
    LegOutcome {
        served,
        shed,
        hits_coalesced: stats.cache_hits + stats.coalesced,
        p99_ms: p99_ms(&mut latencies_ns),
        wall: t0.elapsed(),
    }
}

fn main() {
    let args = ExpArgs::parse(24);
    let names = args.dataset_names(&["pubmed"]);
    let params = LacaParams::new(1e-4);
    let tnam_config = TnamConfig::new(32, MetricFn::Cosine);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let pool = sample_seeds(&ds, args.seeds.max(4), 0x0E4D);
        let t0 = Instant::now();
        let index = ClusterIndex::from_dataset(&ds, &tnam_config, params.clone())
            .expect("index construction");
        eprintln!("[{name}] index built in {:?}", t0.elapsed());
        let workload = skewed_workload(&pool, 4 * pool.len(), 0x10AD);

        // --- Admission policies under an identical burst -------------
        let mut table = Table::new(&["policy", "served", "shed", "hit+coal", "p99 ms", "wall ms"]);
        for (label, policy) in [
            ("block", AdmissionPolicy::Block),
            ("shed", AdmissionPolicy::Shed),
            ("smart-shed", AdmissionPolicy::SmartShed),
        ] {
            let service = QueryService::start(
                index.clone(),
                ServiceConfig::default()
                    .with_workers(1)
                    .with_queue_capacity(QUEUE_DEPTH)
                    .with_cache_per_worker(pool.len())
                    .with_admission(policy),
            );
            let leg = run_policy_leg(&service, &workload);
            let stats = service.shutdown();
            // The robustness claim, re-checked on every run: each of the
            // burst's submissions is accounted for exactly once.
            assert_eq!(
                stats.cache_hits + stats.coalesced + stats.cache_misses + stats.shed,
                workload.len() as u64,
                "{label}: admission ledger out of balance"
            );
            eprintln!(
                "[{name}] {label}: served {}, shed {}, p99 {:.2}ms, wall {:?}",
                leg.served, leg.shed, leg.p99_ms, leg.wall
            );
            table.add_row(vec![
                label.to_string(),
                leg.served.to_string(),
                leg.shed.to_string(),
                leg.hits_coalesced.to_string(),
                format!("{:.2}", leg.p99_ms),
                format!("{:.1}", leg.wall.as_secs_f64() * 1e3),
            ]);
        }
        banner(&format!("Admission under a {}-query burst on {name}", workload.len()));
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("overload_{name}.csv"))).expect("write csv");

        // --- Deadlines: tight budgets expire queued work --------------
        let mut deadline_table = Table::new(&["deadline", "completed", "expired"]);
        for (label, deadline) in
            [("none", None), ("0ms", Some(Duration::ZERO)), ("30s", Some(Duration::from_secs(30)))]
        {
            let service = QueryService::start(
                index.clone(),
                ServiceConfig::default()
                    .with_workers(1)
                    .with_queue_capacity(workload.len().max(1))
                    .with_cache_per_worker(0),
            );
            let opts = match deadline {
                Some(d) => QueryOptions::new().with_deadline(d),
                None => QueryOptions::new(),
            };
            let handles: Vec<QueryHandle> =
                workload.iter().map(|&s| service.submit_with(s, &opts)).collect();
            for handle in handles {
                match handle.wait() {
                    Ok(_) | Err(ServiceError::Expired) => {}
                    Err(e) => panic!("deadline leg: unexpected outcome {e}"),
                }
            }
            let stats = service.shutdown();
            assert_eq!(
                stats.completed + stats.expired,
                workload.len() as u64,
                "{label}: every enqueued job must complete or expire"
            );
            deadline_table.add_row(vec![
                label.to_string(),
                stats.completed.to_string(),
                stats.expired.to_string(),
            ]);
        }
        banner(&format!("Deadline expiry on {name} (1 worker, unbounded queue)"));
        println!("{}", deadline_table.render());

        // --- Graceful drain with a live backlog -----------------------
        let router = ServiceRouter::new();
        let key = router
            .register(
                index.clone(),
                ServiceConfig::default()
                    .with_workers(1)
                    .with_queue_capacity(workload.len().max(1))
                    .with_cache_per_worker(0),
            )
            .expect("register route");
        let backlog: Vec<QueryHandle> =
            workload.iter().map(|&s| router.submit(&key, s).expect("backlog submit")).collect();
        let t0 = Instant::now();
        let report = router.drain();
        let drain_wall = t0.elapsed();
        for handle in backlog {
            handle.wait().expect("drained job must still answer");
        }
        assert_eq!(report.totals.completed, workload.len() as u64, "drain lost backlog work");
        assert!(router.submit(&key, pool[0]).is_err(), "post-drain submissions must fail fast");
        banner(&format!("Graceful drain on {name}"));
        println!(
            "flushed {} queued jobs ({} after the fence) in {:.1}ms; {} route(s) pinned",
            report.totals.completed,
            report.totals.drained,
            drain_wall.as_secs_f64() * 1e3,
            report.pinned
        );
    }
}
