//! **Serving scenario**: throughput of the `laca-service` query engine —
//! queries/sec versus worker count, cold versus warm result cache — plus
//! an online bit-identity check against the serial engine. This is the
//! ROADMAP's "serve heavy traffic" story as a first-class experiment, not
//! a paper table; `benches/serving.rs` is its committed-baseline twin.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_serving -- --seeds 96
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{Laca, LacaParams, MetricFn, Tnam};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use laca_graph::NodeId;
use laca_service::{ClusterIndex, QueryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const WORKERS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = ExpArgs::parse(96);
    let names = args.dataset_names(&["pubmed"]);
    let params = LacaParams::new(1e-4);
    let tnam_config = TnamConfig::new(32, MetricFn::Cosine);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let pool = sample_seeds(&ds, args.seeds.max(2), 0x5E4A);
        let t0 = Instant::now();
        let index = ClusterIndex::from_dataset(&ds, &tnam_config, params.clone())
            .expect("index construction");
        eprintln!("[{name}] index built in {:?}", t0.elapsed());

        // Bit-identity spot check: the serving path must reproduce the
        // serial engine's answers exactly.
        let tnam = Tnam::build(&ds.attributes, &tnam_config).expect("tnam");
        let serial = Laca::new(&ds.graph, Some(&tnam), params.clone()).expect("engine");
        {
            let service = QueryService::start(
                index.clone(),
                ServiceConfig::default().with_workers(2).with_cache_per_worker(0),
            );
            for &s in pool.iter().take(4) {
                let (rho, stats) = serial.bdd_with_stats(s).expect("serial query");
                let answer = service.query(s).expect("served query");
                assert_eq!(
                    answer.rho.to_sorted_pairs(),
                    rho.to_sorted_pairs(),
                    "seed {s}: served ρ' diverged from serial"
                );
                assert_eq!(answer.stats.bdd.push_operations, stats.bdd.push_operations);
            }
            eprintln!("[{name}] bit-identity vs serial: ok ({} seeds)", pool.len().min(4));
        }

        // Warm workload: uniform random draws from the pool (cyclic scans
        // are LRU's worst case and would hide the cache entirely). The
        // per-worker cache budget covers ~1/3 of the pool, so the
        // aggregate cache — and with it the hit rate and warm throughput —
        // grows with the worker count.
        let budget = (pool.len().div_ceil(3)).max(1);
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let warm_workload: Vec<NodeId> =
            (0..3 * pool.len()).map(|_| pool[rng.gen_range(0..pool.len())]).collect();

        let mut table = Table::new(&["workers", "cold q/s", "warm q/s", "warm hit%", "warm vs w1"]);
        let mut warm_qps_w1 = 0.0f64;
        for &w in &WORKERS {
            // Cold: cache disabled, every query computed.
            let cold = QueryService::start(
                index.clone(),
                ServiceConfig::default().with_workers(w).with_cache_per_worker(0),
            );
            let t0 = Instant::now();
            for answer in cold.query_batch(&pool) {
                answer.expect("cold query");
            }
            let cold_qps = pool.len() as f64 / t0.elapsed().as_secs_f64();
            drop(cold);

            // Warm: steady state after one untimed pass.
            let warm = QueryService::start(
                index.clone(),
                ServiceConfig::default().with_workers(w).with_cache_per_worker(budget),
            );
            for answer in warm.query_batch(&warm_workload) {
                answer.expect("warm-up query");
            }
            let before = warm.stats();
            let t0 = Instant::now();
            for answer in warm.query_batch(&warm_workload) {
                answer.expect("warm query");
            }
            let warm_qps = warm_workload.len() as f64 / t0.elapsed().as_secs_f64();
            let after = warm.stats();
            let hits = after.cache_hits - before.cache_hits;
            let misses = after.cache_misses - before.cache_misses;
            let hit_rate =
                if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
            if w == WORKERS[0] {
                warm_qps_w1 = warm_qps;
            }
            eprintln!(
                "[{name}] w={w}: cold {cold_qps:.0} q/s, warm {warm_qps:.0} q/s \
                 (hit rate {hit_rate:.2}, cache {}/{})",
                after.cache_entries, after.cache_capacity
            );
            table.add_row(vec![
                w.to_string(),
                format!("{cold_qps:.0}"),
                format!("{warm_qps:.0}"),
                format!("{:.0}%", hit_rate * 100.0),
                format!("{:.2}x", warm_qps / warm_qps_w1.max(1e-9)),
            ]);
        }
        banner(&format!("Serving throughput on {name} (ε = 1e-4, pool = {})", pool.len()));
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("serving_{name}.csv"))).expect("write csv");
    }
}
