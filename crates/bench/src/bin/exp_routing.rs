//! **Multi-index routing scenario**: one [`ServiceRouter`] front door
//! over several param-distinct indices of the same dataset — per-route
//! throughput and isolation, plus a single-flight coalescing
//! demonstration (N identical concurrent misses, one compute). This is
//! the ROADMAP's "multi-graph routing + request coalescing" serving
//! follow-up as a first-class experiment; `benches/routing.rs` is its
//! committed-baseline twin.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_routing -- --seeds 48
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use laca_graph::NodeId;
use laca_service::{ClusterIndex, RouteKey, ServiceConfig, ServiceRouter};
use std::time::Instant;

/// Handles submitted per seed in the coalescing burst.
const FAN: usize = 6;

/// The param grid registered per dataset: the "many parameterizations of
/// one graph, served side by side" shape.
fn param_grid() -> Vec<(&'static str, LacaParams)> {
    vec![
        ("eps=1e-4", LacaParams::new(1e-4)),
        ("eps=1e-3", LacaParams::new(1e-3)),
        ("eps=1e-4, w/o SNAS", LacaParams::new(1e-4).without_snas()),
    ]
}

fn main() {
    let args = ExpArgs::parse(48);
    let names = args.dataset_names(&["cora", "pubmed"]);
    let tnam_config = TnamConfig::new(16, MetricFn::Cosine);
    let config = ServiceConfig::default().with_workers(2).with_queue_capacity(256);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let pool = sample_seeds(&ds, args.seeds.max(2), 0x407E);

        // Hot registration: the router serves route k while route k+1 is
        // still building its index.
        let router = ServiceRouter::new();
        let mut routes: Vec<(String, RouteKey)> = Vec::new();
        for (label, params) in param_grid() {
            let t0 = Instant::now();
            let index =
                ClusterIndex::from_dataset(&ds, &tnam_config, params).expect("index construction");
            let key = router
                .register(index, config.clone().with_cache_per_worker(pool.len()))
                .expect("duplicate route in param grid");
            eprintln!("[{name}] registered {key} ({label}) in {:?}", t0.elapsed());
            routes.push((label.to_string(), key));
        }

        let mut table =
            Table::new(&["route", "cold q/s", "warm q/s", "hit%", "computed", "coalesced"]);
        for (label, key) in &routes {
            // Cold pass: every pool seed is a miss on this route.
            let t0 = Instant::now();
            for r in router.query_batch(key, &pool).expect("route vanished") {
                r.expect("cold query");
            }
            let cold_qps = pool.len() as f64 / t0.elapsed().as_secs_f64();

            // Warm pass over the now-cached pool.
            let t0 = Instant::now();
            for r in router.query_batch(key, &pool).expect("route vanished") {
                r.expect("warm query");
            }
            let warm_qps = pool.len() as f64 / t0.elapsed().as_secs_f64();

            // Coalescing burst: FAN concurrent handles per fresh seed
            // (fresh = beyond the cached pool) — computes must stay ~1
            // per seed, not FAN per seed.
            let service = router.route(key).expect("route vanished");
            service.reset_stats();
            let fresh: Vec<NodeId> = {
                let cached: std::collections::HashSet<NodeId> = pool.iter().copied().collect();
                (0..ds.graph.n() as NodeId).filter(|s| !cached.contains(s)).take(8).collect()
            };
            let handles: Vec<_> = fresh
                .iter()
                .flat_map(|&s| (0..FAN).map(move |_| s))
                .map(|s| service.submit(s))
                .collect();
            for h in handles {
                h.wait().expect("burst query");
            }
            let stats = service.stats();
            table.add_row(vec![
                label.clone(),
                format!("{cold_qps:.0}"),
                format!("{warm_qps:.0}"),
                format!("{:.0}%", stats.hit_rate() * 100.0),
                stats.completed.to_string(),
                stats.coalesced.to_string(),
            ]);
            eprintln!(
                "[{name}] {label}: burst of {}x{FAN} identical misses -> {} computes, \
                 {} coalesced, {} hits",
                fresh.len(),
                stats.completed,
                stats.coalesced,
                stats.cache_hits,
            );
        }

        // Retirement under traffic: drop the middle route, the others
        // keep serving.
        let retired = &routes[1].1;
        assert!(router.retire(retired), "retire must find the live route");
        assert!(router.query(retired, pool[0]).is_err(), "retired route must 404");
        router.query(&routes[0].1, pool[0]).expect("surviving route must keep serving");

        let agg = router.aggregate_stats();
        banner(&format!(
            "Routing on {name} ({} routes registered, 1 retired, pool = {})",
            routes.len(),
            pool.len()
        ));
        println!("{}", table.render());
        println!(
            "aggregate: {} computed | {} hits | {} coalesced | workers {}",
            agg.completed, agg.cache_hits, agg.coalesced, agg.workers
        );
        table.write_csv(&args.out_dir.join(format!("routing_{name}.csv"))).expect("write csv");
    }
}
