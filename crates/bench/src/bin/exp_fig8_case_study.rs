//! **Fig. 8**: the qualitative co-authorship case study. On a synthetic
//! AMiner-like collaboration network, run LACA and PR-Nibble from the same
//! seed scholar and print each returned collaborator with its attribute
//! (research-interest) similarity to the seed. The paper's finding:
//! PR-Nibble returns structurally-linked scholars with 0% interest
//! overlap; LACA does not.
//!
//! `cargo run --release -p laca-bench --bin exp_fig8_case_study`

use laca_baselines::pr_nibble::PrNibble;
use laca_bench::{banner, ExpArgs};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::table::Table;
use laca_graph::datasets::aminer_like;
use laca_graph::NodeId;

fn main() {
    let args = ExpArgs::parse(1);
    let ds = aminer_like().generate("aminer-like").unwrap();
    // Pick a mid-degree "scholar" as the seed, like the paper's example.
    let seed: NodeId = (0..ds.graph.n() as NodeId)
        .max_by_key(|&v| {
            let d = ds.graph.degree(v);
            if d <= 12 {
                d
            } else {
                0
            }
        })
        .unwrap();
    let scholar = |v: NodeId| format!("Scholar-{v:04}");
    let top = 10usize;

    let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::Cosine)).unwrap();
    let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-6)).unwrap();
    let laca_cluster = engine.cluster(seed, top + 1).unwrap();
    let pr_cluster = PrNibble::new(&ds.graph, 0.8, 1e-6).cluster(seed, top + 1).unwrap();

    banner(&format!(
        "Fig. 8 analogue: collaborators of {} (degree {})",
        scholar(seed),
        ds.graph.degree(seed)
    ));
    let mut zero_counts = [0usize; 2];
    for (idx, (label, cluster)) in
        [("LACA", &laca_cluster), ("PR-Nibble", &pr_cluster)].iter().enumerate()
    {
        let mut table = Table::new(&["Collaborator", "Interest similarity", "Co-author?"]);
        for &v in cluster.iter().filter(|&&v| v != seed).take(top) {
            let sim = ds.attributes.dot(seed as usize, v as usize);
            if sim < 0.10 {
                zero_counts[idx] += 1;
            }
            table.add_row(vec![
                scholar(v),
                format!("{:.0}%", sim * 100.0),
                if ds.graph.has_edge(seed, v) { "yes".into() } else { "no".into() },
            ]);
        }
        println!("-- {label} --\n{}", table.render());
        table
            .write_csv(&args.out_dir.join(format!("fig8_case_study_{}.csv", label.to_lowercase())))
            .expect("write csv");
    }
    println!(
        "negligible-interest (<10%) collaborators: LACA {}/{top}, PR-Nibble {}/{top}",
        zero_counts[0], zero_counts[1]
    );
}
