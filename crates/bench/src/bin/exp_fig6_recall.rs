//! **Fig. 6**: recall of the explored region when varying the diffusion
//! threshold `ε ∈ {1, 1e-2, …, 1e-8}` — LACA (C), LACA (E),
//! LACA (w/o SNAS) vs the diffusion baselines PR-Nibble, APR-Nibble and
//! HK-Relax. The predicted cluster is the full output support (its size is
//! the `O(1/ε)` runtime budget the figure varies).
//!
//! `cargo run --release -p laca-bench --bin exp_fig6_recall -- --seeds 15`

use laca_baselines::hk_relax::HkRelax;
use laca_baselines::kernel::gaussian_reweighted;
use laca_baselines::pr_nibble::PrNibble;
use laca_baselines::Score;
use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::metrics::recall;
use laca_eval::table::{fmt3, Table};
use laca_graph::{AttributedDataset, NodeId};

const EPSILONS: [f64; 5] = [1.0, 1e-2, 1e-4, 1e-6, 1e-8];

fn support_cluster(score: &Score, seed: NodeId) -> Vec<NodeId> {
    match score {
        Score::Sparse(s) => {
            let mut c: Vec<NodeId> = s.iter().map(|(v, _)| v).collect();
            if !c.contains(&seed) {
                c.push(seed);
            }
            c
        }
        Score::Dense(_) => unreachable!("diffusion methods are sparse"),
    }
}

fn avg_recall(
    ds: &AttributedDataset,
    seeds: &[NodeId],
    mut run: impl FnMut(NodeId) -> Vec<NodeId>,
) -> f64 {
    let mut acc = 0.0;
    for &s in seeds {
        acc += recall(&run(s), ds.ground_truth(s));
    }
    acc / seeds.len() as f64
}

fn main() {
    let args = ExpArgs::parse(15);
    let names = args.dataset_names(&["cora", "pubmed", "blogcl", "flickr", "arxiv", "yelp"]);
    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0xF16);
        let tnam_c = Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::Cosine)).unwrap();
        let tnam_e =
            Tnam::build(&ds.attributes, &TnamConfig::new(32, MetricFn::ExpCosine { delta: 1.0 }))
                .unwrap();
        let weighted = gaussian_reweighted(&ds.graph, &ds.attributes, 1.0).unwrap();

        let mut table = Table::new(&[
            "epsilon",
            "LACA (C)",
            "LACA (E)",
            "LACA (w/o SNAS)",
            "PR-Nibble",
            "APR-Nibble",
            "HK-Relax",
        ]);
        for &eps in &EPSILONS {
            let engine_c = Laca::new(&ds.graph, Some(&tnam_c), LacaParams::new(eps)).unwrap();
            let engine_e = Laca::new(&ds.graph, Some(&tnam_e), LacaParams::new(eps)).unwrap();
            let engine_w = Laca::new(&ds.graph, None, LacaParams::new(eps).without_snas()).unwrap();
            let run_engine = |engine: &Laca, s: NodeId| -> Vec<NodeId> {
                let rho = engine.bdd(s).unwrap_or_default();
                let mut c: Vec<NodeId> = rho.iter().map(|(v, _)| v).collect();
                if !c.contains(&s) {
                    c.push(s);
                }
                c
            };
            let row = vec![
                format!("{eps:.0e}"),
                fmt3(avg_recall(&ds, &seeds, |s| run_engine(&engine_c, s))),
                fmt3(avg_recall(&ds, &seeds, |s| run_engine(&engine_e, s))),
                fmt3(avg_recall(&ds, &seeds, |s| run_engine(&engine_w, s))),
                fmt3(avg_recall(&ds, &seeds, |s| {
                    support_cluster(
                        &PrNibble::new(&ds.graph, 0.8, eps.max(1e-9)).score(s).unwrap(),
                        s,
                    )
                })),
                fmt3(avg_recall(&ds, &seeds, |s| {
                    support_cluster(
                        &PrNibble::new(&weighted, 0.8, eps.max(1e-9)).score(s).unwrap(),
                        s,
                    )
                })),
                fmt3(avg_recall(&ds, &seeds, |s| {
                    support_cluster(
                        &HkRelax::new(&ds.graph, 5.0, eps.max(1e-9)).score(s).unwrap(),
                        s,
                    )
                })),
            ];
            table.add_row(row);
            eprintln!("[{name}] eps {eps:.0e} done");
        }
        banner(&format!("Fig. 6 analogue: recall vs epsilon ({name})"));
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("fig6_recall_{name}.csv"))).expect("write csv");
    }
}
