//! **Fig. 7**: preprocessing and online (per-query) wall-clock of
//! LACA (C) / LACA (E) against the strongest competitors on each dataset.
//! Absolute numbers differ from the paper's testbed; the *shape* to check
//! is local-diffusion online costs in the milliseconds vs global methods
//! in the 100 ms–minutes range, with LACA preprocessing in seconds where
//! embedding methods take minutes.
//!
//! Preprocessing is timed **twice**, as separate columns: once under
//! `rayon::run_sequential` (all parallel kernels inline — the paper's
//! single-threaded setting) and once on the work-stealing pool. Earlier
//! revisions reported a single build wall-clock taken while the rayon
//! pool was live, conflating preprocessing threading with query threading;
//! the two columns make the split explicit (they tie on a 1-core host).
//! Online latency is still measured strictly sequentially.
//!
//! `cargo run --release -p laca-bench --bin exp_fig7_runtime -- --seeds 10`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_eval::harness::{evaluate, sample_seeds};
use laca_eval::methods::{Extraction, MethodSpec};
use laca_eval::table::{fmt3, fmt_duration, Table};
use laca_eval::EvalComputeConfig;
use laca_graph::datasets::ATTRIBUTED_NAMES;

/// The per-dataset competitor panels of Fig. 7 (top-precision baselines).
fn panel(name: &str) -> Vec<MethodSpec> {
    use MethodSpec::*;
    match name {
        "cora" => vec![Cfane(Extraction::Knn), HkRelax, Pane(Extraction::Knn), SimRank],
        "pubmed" => vec![Cfane(Extraction::Knn), SimRank, Pane(Extraction::Knn), PrNibble],
        "blogcl" => vec![Cfane(Extraction::Knn), Pane(Extraction::Knn), SimAttrC, HkRelax],
        "flickr" => vec![Pane(Extraction::Knn), HkRelax, Jaccard, Cfane(Extraction::Knn)],
        "arxiv" => vec![HkRelax, PrNibble, AprNibble, Wfd],
        "yelp" => vec![SimAttrC, Pane(Extraction::Knn), AttriRank, Node2Vec(Extraction::Knn)],
        "reddit" => vec![PNormFd, HkRelax, PrNibble, Crd],
        "amazon2m" => vec![Wfd, PNormFd, PrNibble, Pane(Extraction::Knn)],
        _ => vec![HkRelax, PrNibble],
    }
}

fn main() {
    let args = ExpArgs::parse(10);
    let names = args.dataset_names(&ATTRIBUTED_NAMES);
    let cfg = EvalComputeConfig::default();
    for name in &names {
        let ds = load_dataset(name, args.scale);
        let seeds = sample_seeds(&ds, args.seeds, 0xF17);
        let mut methods = vec![MethodSpec::LacaC, MethodSpec::LacaE];
        methods.extend(panel(name));
        let mut table = Table::new(&[
            "Method",
            "Prep (serial)",
            "Prep (parallel)",
            "Online (per query)",
            "Precision",
        ]);
        for spec in methods {
            // Serial preprocessing leg: same code, parallel kernels forced
            // inline. Timed via its own prepare call and then discarded.
            let serial_prep =
                rayon::run_sequential(|| spec.prepare(&ds, &cfg)).ok().map(|p| p.prep_time);
            match spec.prepare(&ds, &cfg) {
                Ok(prepared) => {
                    // Sequential evaluation: online latency must not be
                    // perturbed by rayon contention.
                    let out = evaluate(&prepared, &ds, &seeds);
                    table.add_row(vec![
                        out.label.clone(),
                        serial_prep.map_or_else(|| "-".into(), fmt_duration),
                        fmt_duration(out.prep_time),
                        fmt_duration(out.avg_online_time),
                        fmt3(out.avg_precision),
                    ]);
                }
                Err(laca_eval::EvalError::NotApplicable { method, reason }) => {
                    table.add_row(vec![
                        method,
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        reason.to_string(),
                    ]);
                }
                Err(e) => {
                    table.add_row(vec![
                        spec.label(),
                        "err".into(),
                        "err".into(),
                        e.to_string(),
                        String::new(),
                    ]);
                }
            }
        }
        banner(&format!("Fig. 7 analogue: running times ({name})"));
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("fig7_runtime_{name}.csv"))).expect("write csv");
    }
}
