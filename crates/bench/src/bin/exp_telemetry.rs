//! **Telemetry scenario**: the flight recorder under a mixed workload —
//! cache hits, cold misses, coalesced joins and shed submissions all in
//! one burst — then the two artifacts the observability layer exists to
//! produce: a per-query span timeline (admission → probe → queue →
//! compute → reply, with kernel counters) and the Prometheus-style text
//! exposition (`laca_*` families with per-route latency summaries).
//! The run re-checks the accounting the exposition is built on: span
//! outcomes reconcile with the service counters, and histogram sample
//! counts match the completions they were recorded for.
//!
//! ```sh
//! cargo run --release -p laca-bench --bin exp_telemetry -- --seeds 12
//! ```

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::tnam::TnamConfig;
use laca_core::{LacaParams, MetricFn};
use laca_eval::harness::sample_seeds;
use laca_eval::table::Table;
use laca_service::{
    AdmissionPolicy, ClusterIndex, QueryHandle, ServiceConfig, ServiceError, ServiceRouter,
};
use laca_telemetry::{QuerySpan, SpanOutcome, SUBMIT_WORKER};

/// One worker and a short queue so a burst actually sheds; the point of
/// the scenario is outcome *diversity*, not throughput.
const QUEUE_DEPTH: usize = 4;

fn micros(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

fn worker_label(span: &QuerySpan) -> String {
    if span.worker == SUBMIT_WORKER {
        "submit".to_string()
    } else {
        format!("w{}", span.worker)
    }
}

/// The span timeline table: one row per recorded span, newest last.
fn timeline(spans: &[QuerySpan]) -> Table {
    let mut table = Table::new(&[
        "id",
        "outcome",
        "lane",
        "queue us",
        "park us",
        "compute us",
        "total us",
        "pushes",
        "touched",
    ]);
    for span in spans {
        table.add_row(vec![
            span.id.to_string(),
            span.outcome.label().to_string(),
            worker_label(span),
            micros(span.queue_wait_ns()),
            micros(span.park_ns()),
            micros(span.compute_ns()),
            micros(span.total_ns()),
            span.pushes.to_string(),
            span.touched.to_string(),
        ]);
    }
    table
}

fn main() {
    let args = ExpArgs::parse(12);
    let names = args.dataset_names(&["pubmed"]);
    let params = LacaParams::new(1e-4);
    let tnam_config = TnamConfig::new(32, MetricFn::Cosine);

    for name in &names {
        let ds = load_dataset(name, args.scale);
        let pool = sample_seeds(&ds, args.seeds.max(4), 0x7E1E);
        let index = ClusterIndex::from_dataset(&ds, &tnam_config, params.clone())
            .expect("index construction");

        let router = ServiceRouter::new();
        let key = router
            .register(
                index,
                ServiceConfig::default()
                    .with_workers(1)
                    .with_queue_capacity(QUEUE_DEPTH)
                    .with_cache_per_worker(pool.len())
                    .with_admission(AdmissionPolicy::Shed)
                    .with_spans_per_worker(256),
            )
            .expect("register route");
        let service = router.route(&key).expect("route pinned");

        // --- Mixed workload ------------------------------------------
        // Half the pool is primed (burst-phase hits), half stays cold
        // (burst-phase misses); every cold seed appears twice in the
        // burst so in-flight misses coalesce, and the short queue sheds
        // whatever the single worker cannot absorb.
        let (primed, cold) = pool.split_at(pool.len() / 2);
        for &seed in primed {
            service.query(seed).expect("prime query");
        }
        service.reset_stats();
        let burst: Vec<_> = cold
            .iter()
            .chain(cold.iter())
            .chain(primed.iter())
            .chain(primed.iter())
            .copied()
            .collect();
        let handles: Vec<QueryHandle> = burst.iter().map(|&s| service.submit(s)).collect();
        let mut served = 0u64;
        let mut shed = 0u64;
        for handle in handles {
            match handle.wait() {
                Ok(_) => served += 1,
                Err(ServiceError::Overloaded) => shed += 1,
                Err(e) => panic!("burst: unexpected outcome {e}"),
            }
        }
        let stats = service.stats();
        assert_eq!(
            stats.cache_hits + stats.coalesced + stats.cache_misses + stats.shed,
            burst.len() as u64,
            "admission ledger out of balance"
        );
        // The histograms sample exactly what the counters count: one
        // queue-wait and one compute sample per dequeued job.
        assert_eq!(stats.compute_samples, stats.compute_hist.count, "compute histogram count");
        assert_eq!(
            stats.queue_wait_samples, stats.queue_wait_hist.count,
            "queue-wait histogram count"
        );
        eprintln!(
            "[{name}] burst of {}: served {served}, shed {shed}, hits {}, coalesced {}, p99 compute {:?}ns",
            burst.len(),
            stats.cache_hits,
            stats.coalesced,
            stats.compute_hist.quantile(0.99),
        );

        // --- Artifact 1: the span timeline ---------------------------
        let recorder = service.flight_recorder();
        let spans = recorder.snapshot(16);
        assert!(!spans.is_empty(), "flight recorder captured nothing");
        let outcomes: Vec<SpanOutcome> = spans.iter().map(|s| s.outcome).collect();
        assert!(
            outcomes.contains(&SpanOutcome::Hit) && outcomes.contains(&SpanOutcome::Computed),
            "mixed workload should record both hits and computes"
        );
        banner(&format!(
            "Flight recorder on {name}: last {} of {} spans ({} dropped)",
            spans.len(),
            recorder.recorded(),
            recorder.dropped(),
        ));
        let table = timeline(&spans);
        println!("{}", table.render());
        table.write_csv(&args.out_dir.join(format!("telemetry_{name}.csv"))).expect("write csv");

        // --- Artifact 2: the rendered exposition ---------------------
        // Retire the route first so the render also exercises the
        // archive path (`laca_*_total` series outliving their route).
        drop(service);
        assert!(router.retire(&key));
        let rendered = router.telemetry().render_text();
        assert!(rendered.contains("laca_completed_total"), "missing counter family");
        assert!(rendered.contains("laca_compute_seconds"), "missing latency summary");
        banner(&format!("Rendered exposition for {name} (route retired, series archived)"));
        println!("{rendered}");
    }
}
