//! **Fig. 10**: scalability of LACA (C) / LACA (E) on the four large
//! analogues — online running time when varying `ε` (a,b) and the TNAM
//! dimension `k` (c,d). The expected shapes: time grows ×10 per tenfold
//! decrease of `ε`, and is flat in `k` while `k ≪ 1/ε` dominates.
//!
//! `cargo run --release -p laca-bench --bin exp_fig10_scalability -- --param epsilon`

use laca_bench::{banner, load_dataset, ExpArgs};
use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
use laca_eval::harness::sample_seeds;
use laca_eval::table::{fmt_duration, Table};
use std::time::{Duration, Instant};

fn main() {
    let args = ExpArgs::parse(10);
    let names = args.dataset_names(&["arxiv", "yelp", "reddit", "amazon2m"]);
    let sweeps: Vec<&str> = match args.param.as_deref() {
        Some("epsilon") => vec!["epsilon"],
        Some("k") => vec!["k"],
        Some(other) => panic!("unknown --param {other} (epsilon|k)"),
        None => vec!["epsilon", "k"],
    };
    let metrics = [("C", MetricFn::Cosine), ("E", MetricFn::ExpCosine { delta: 1.0 })];

    for sweep in sweeps {
        for (mlabel, metric) in metrics {
            let mut headers = vec![sweep.to_string()];
            headers.extend(names.iter().cloned());
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = Table::new(&header_refs);
            let values: Vec<f64> = match sweep {
                "epsilon" => vec![1.0, 1e-2, 1e-4, 1e-6, 1e-8],
                _ => vec![8.0, 16.0, 32.0, 64.0, 128.0],
            };
            let mut rows: Vec<Vec<String>> = values
                .iter()
                .map(|&v| {
                    vec![if sweep == "epsilon" { format!("{v:.0e}") } else { format!("{v:.0}") }]
                })
                .collect();
            for name in &names {
                let ds = load_dataset(name, args.scale);
                let seeds = sample_seeds(&ds, args.seeds, 0xF1A);
                for (ri, &v) in values.iter().enumerate() {
                    let (k, eps) = match sweep {
                        "epsilon" => (32usize, v),
                        _ => (v as usize, 1e-6),
                    };
                    let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(k, metric)).unwrap();
                    let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(eps)).unwrap();
                    let mut total = Duration::ZERO;
                    for &s in &seeds {
                        let t0 = Instant::now();
                        let _ = engine.bdd(s).unwrap();
                        total += t0.elapsed();
                    }
                    let avg = total / seeds.len() as u32;
                    eprintln!("[{name}] LACA({mlabel}) {sweep}={v:.0e}: {avg:?}/query");
                    rows[ri].push(fmt_duration(avg));
                }
            }
            for row in rows {
                table.add_row(row);
            }
            banner(&format!("Fig. 10 analogue: online time vs {sweep}, LACA ({mlabel})"));
            println!("{}", table.render());
            table
                .write_csv(&args.out_dir.join(format!("fig10_{sweep}_laca_{mlabel}.csv")))
                .expect("write csv");
        }
    }
}
