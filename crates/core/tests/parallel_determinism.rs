//! The preprocessing determinism contract at the `laca-core` level:
//! `Tnam::build` must produce **bit-identical** matrices whether its
//! kernels run on the worker pool or inline under
//! `rayon::run_sequential` — for every metric/ablation configuration.
//! (Same contract as the serving tests of PR 3, applied to the offline
//! phase.)

use laca_core::tnam::TnamConfig;
use laca_core::{MetricFn, Tnam};
use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
use laca_graph::AttributeMatrix;
use rayon::run_sequential;

/// Pins the pool to 4 workers before first use so the parallel legs get
/// real cross-thread scheduling even on a 1-core container.
fn four_workers() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

/// Large enough that every parallel kernel clears its serial-fallback
/// threshold (SVD sketches, ORF feature maps, row normalization).
fn attrs() -> AttributeMatrix {
    let ds = AttributedGraphSpec {
        n: 3000,
        n_clusters: 6,
        avg_degree: 8.0,
        p_intra: 0.85,
        missing_intra: 0.05,
        degree_exponent: 2.5,
        cluster_size_skew: 0.2,
        attributes: Some(AttributeSpec {
            dim: 400,
            topic_words: 24,
            tokens_per_node: 30,
            attr_noise: 0.25,
        }),
        seed: 1234,
    }
    .generate("determinism")
    .unwrap();
    ds.attributes
}

fn assert_tnam_bits_equal(a: &Tnam, b: &Tnam, label: &str) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.width(), b.width());
    for i in (0..a.n()).step_by(37) {
        for j in (0..a.n()).step_by(41) {
            let (va, vb) = (a.s_approx(i, j), b.s_approx(i, j));
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: s({i},{j}) diverged: {va} vs {vb}");
        }
    }
    // Accumulator round-trips exercise the stored rows directly.
    let mut pa = a.new_accumulator();
    let mut pb = b.new_accumulator();
    a.accumulate_into(&mut pa, 0, 0.3);
    b.accumulate_into(&mut pb, 0, 0.3);
    a.accumulate_into(&mut pa, 7, 0.7);
    b.accumulate_into(&mut pb, 7, 0.7);
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: ψ accumulator diverged");
    }
}

#[test]
fn tnam_build_is_bit_identical_serial_vs_parallel() {
    four_workers();
    let x = attrs();
    let configs = [
        ("cosine+ksvd", TnamConfig::new(32, MetricFn::Cosine).with_seed(5)),
        ("cosine-ksvd", TnamConfig::new(32, MetricFn::Cosine).with_seed(5).without_svd()),
        ("exp+ksvd", TnamConfig::new(32, MetricFn::ExpCosine { delta: 1.0 }).with_seed(5)),
        (
            "exp-ksvd",
            TnamConfig::new(32, MetricFn::ExpCosine { delta: 1.0 }).with_seed(5).without_svd(),
        ),
    ];
    for (label, cfg) in configs {
        let par = Tnam::build(&x, &cfg).unwrap();
        let seq = run_sequential(|| Tnam::build(&x, &cfg).unwrap());
        assert_tnam_bits_equal(&par, &seq, label);
    }
}

#[test]
fn repeated_parallel_builds_are_stable() {
    four_workers();
    // Scheduling nondeterminism across runs must not leak into the rows:
    // two parallel builds of the same config are bit-equal to each other.
    let x = attrs();
    let cfg = TnamConfig::new(24, MetricFn::ExpCosine { delta: 2.0 }).with_seed(99);
    let a = Tnam::build(&x, &cfg).unwrap();
    let b = Tnam::build(&x, &cfg).unwrap();
    assert_tnam_bits_equal(&a, &b, "repeat");
}
