//! Symmetric Normalized Attribute Similarity (SNAS, Section II-B).
//!
//! ```text
//! s(v_i, v_j) = f(x⁽ⁱ⁾, x⁽ʲ⁾) / ( √Σ_ℓ f(x⁽ⁱ⁾, x⁽ˡ⁾) · √Σ_ℓ f(x⁽ʲ⁾, x⁽ˡ⁾) )   (Eq. 1)
//! ```
//!
//! This module provides *exact* SNAS computation. The cosine variant is
//! `O(nd)` exact (its denominator is a dot with the column-sum vector); the
//! exponential-cosine, Jaccard and Pearson variants need `O(n²)` pair
//! evaluations and are used as references on small graphs and for the
//! Table XI brute-force ablation — the production path is the TNAM
//! factorization in [`crate::tnam`].

use crate::CoreError;
use laca_graph::AttributeMatrix;
use rayon::prelude::*;

/// Computes the `O(n²)` denominator table `denom[i] = Σ_ℓ f(i, ℓ)` in
/// parallel over `i`. Each entry is an independent serial sum over `ℓ`
/// ascending, so the table is bit-identical for any thread count. Tiny
/// tables stay serial — pool dispatch costs more than it saves.
fn pairwise_denoms(n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Vec<f64> {
    if n * n < 16_384 {
        return (0..n).map(|i| (0..n).map(|l| f(i, l)).sum()).collect();
    }
    let ids: Vec<usize> = (0..n).collect();
    ids.par_iter().map(|&i| (0..n).map(|l| f(i, l)).sum()).collect()
}

/// The metric function `f(·,·)` of Eq. 1 used by the production LACA path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricFn {
    /// `f = x⁽ⁱ⁾ · x⁽ʲ⁾` (Eq. 2); LACA (C).
    Cosine,
    /// `f = exp(x⁽ⁱ⁾ · x⁽ʲ⁾ / δ)` (Eq. 3); LACA (E). `δ` is typically 1 or 2.
    ExpCosine {
        /// Sensitivity factor δ.
        delta: f64,
    },
}

impl MetricFn {
    /// Evaluates `f` on the attribute rows `i`, `j`.
    pub fn eval(&self, attrs: &AttributeMatrix, i: usize, j: usize) -> f64 {
        match *self {
            MetricFn::Cosine => attrs.dot(i, j),
            MetricFn::ExpCosine { delta } => (attrs.dot(i, j) / delta).exp(),
        }
    }
}

/// The brute-force similarity family for the Table XI ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AltMetricFn {
    /// Jaccard coefficient over attribute supports (binary attributes).
    Jaccard,
    /// Pearson correlation of dense attribute rows, shifted to `[0, 1]`
    /// (Eq. 1 needs a non-negative `f` for its square roots).
    Pearson,
}

/// Exact SNAS oracle: precomputes the Eq. 1 denominators.
#[derive(Debug, Clone)]
pub struct ExactSnas {
    /// `√(Σ_ℓ f(i, ℓ))` per node.
    inv_sqrt_denom: Vec<f64>,
    kind: SnasKind,
}

#[derive(Debug, Clone)]
enum SnasKind {
    Metric(MetricFn),
    Alt(AltMetricFn),
}

impl ExactSnas {
    /// Exact SNAS for a production metric. Cosine runs in `O(nnz(X))`;
    /// exp-cosine in `O(n²)` pair evaluations (small graphs only).
    pub fn new(attrs: &AttributeMatrix, metric: MetricFn) -> Result<Self, CoreError> {
        if attrs.is_empty() {
            return Err(CoreError::NoAttributes);
        }
        let n = attrs.n();
        let denoms: Vec<f64> = match metric {
            MetricFn::Cosine => {
                // Σ_ℓ x⁽ⁱ⁾·x⁽ˡ⁾ = x⁽ⁱ⁾ · (Σ_ℓ x⁽ˡ⁾).
                let ones = vec![1.0; n];
                let colsum = attrs.mul_transpose_vec(&ones)?;
                attrs.mul_vec(&colsum)?
            }
            MetricFn::ExpCosine { delta } => {
                if delta <= 0.0 {
                    return Err(CoreError::BadParameter("delta must be > 0"));
                }
                pairwise_denoms(n, |i, l| (attrs.dot(i, l) / delta).exp())
            }
        };
        Ok(ExactSnas { inv_sqrt_denom: to_inv_sqrt(&denoms), kind: SnasKind::Metric(metric) })
    }

    /// Exact SNAS for a Table XI alternative metric (`O(n²)`).
    pub fn new_alt(attrs: &AttributeMatrix, metric: AltMetricFn) -> Result<Self, CoreError> {
        if attrs.is_empty() {
            return Err(CoreError::NoAttributes);
        }
        let n = attrs.n();
        let denoms: Vec<f64> = pairwise_denoms(n, |i, l| alt_f(attrs, metric, i, l));
        Ok(ExactSnas { inv_sqrt_denom: to_inv_sqrt(&denoms), kind: SnasKind::Alt(metric) })
    }

    /// The SNAS value `s(v_i, v_j)` (Eq. 1), in `[0, 1]`.
    pub fn s(&self, attrs: &AttributeMatrix, i: usize, j: usize) -> f64 {
        let f = match &self.kind {
            SnasKind::Metric(m) => m.eval(attrs, i, j),
            SnasKind::Alt(m) => alt_f(attrs, *m, i, j),
        };
        f * self.inv_sqrt_denom[i] * self.inv_sqrt_denom[j]
    }
}

fn to_inv_sqrt(denoms: &[f64]) -> Vec<f64> {
    denoms.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect()
}

fn alt_f(attrs: &AttributeMatrix, metric: AltMetricFn, i: usize, j: usize) -> f64 {
    match metric {
        AltMetricFn::Jaccard => {
            let (ai, _) = attrs.row(i);
            let (bi, _) = attrs.row(j);
            if ai.is_empty() && bi.is_empty() {
                return 0.0;
            }
            let mut inter = 0usize;
            let mut p = 0usize;
            let mut q = 0usize;
            while p < ai.len() && q < bi.len() {
                match ai[p].cmp(&bi[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        p += 1;
                        q += 1;
                    }
                }
            }
            let union = ai.len() + bi.len() - inter;
            if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            }
        }
        AltMetricFn::Pearson => {
            // Pearson over dense rows, mapped from [-1, 1] to [0, 1].
            let d = attrs.dim() as f64;
            if d < 2.0 {
                return 0.0;
            }
            let (ai, av) = attrs.row(i);
            let (bi, bv) = attrs.row(j);
            let mean_a: f64 = av.iter().sum::<f64>() / d;
            let mean_b: f64 = bv.iter().sum::<f64>() / d;
            // Work with the sparse identity Σ(x-mx)(y-my) =
            // Σ x·y − d·mx·my (zeros contribute (0−m) products).
            let dotp = attrs.dot(i, j);
            let cov = dotp - d * mean_a * mean_b;
            let var_a: f64 = av.iter().map(|v| v * v).sum::<f64>() - d * mean_a * mean_a;
            let var_b: f64 = bv.iter().map(|v| v * v).sum::<f64>() - d * mean_b * mean_b;
            let _ = (ai, bi);
            if var_a <= 0.0 || var_b <= 0.0 {
                return 0.0;
            }
            let r = cov / (var_a.sqrt() * var_b.sqrt());
            (r.clamp(-1.0, 1.0) + 1.0) / 2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> AttributeMatrix {
        AttributeMatrix::from_rows(
            6,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(0, 1.0), (2, 1.0)],
                vec![(3, 1.0), (4, 1.0)],
                vec![(3, 1.0), (4, 1.0), (5, 1.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn snas_is_symmetric_and_in_range() {
        let x = attrs();
        for metric in [MetricFn::Cosine, MetricFn::ExpCosine { delta: 1.0 }] {
            let s = ExactSnas::new(&x, metric).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    let v = s.s(&x, i, j);
                    let w = s.s(&x, j, i);
                    assert!((v - w).abs() < 1e-12, "asymmetry at ({i},{j})");
                    assert!((0.0..=1.0 + 1e-12).contains(&v), "s({i},{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn similar_nodes_have_higher_snas() {
        let x = attrs();
        let s = ExactSnas::new(&x, MetricFn::Cosine).unwrap();
        // Rows 2 and 3 share attributes; rows 0 and 2 share none.
        assert!(s.s(&x, 2, 3) > s.s(&x, 0, 2));
        assert_eq!(s.s(&x, 0, 2), 0.0);
    }

    #[test]
    fn cosine_denominator_matches_brute_force() {
        let x = attrs();
        let s = ExactSnas::new(&x, MetricFn::Cosine).unwrap();
        for i in 0..4 {
            let denom: f64 = (0..4).map(|l| x.dot(i, l)).sum();
            let expect = 1.0 / denom.sqrt();
            assert!((s.inv_sqrt_denom[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_cosine_softmax_property() {
        // Eq. 4 is a softmax variant: identical attribute rows give the
        // maximal s among a node's pairs.
        let x = attrs();
        let s = ExactSnas::new(&x, MetricFn::ExpCosine { delta: 1.0 }).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(s.s(&x, i, j) <= s.s(&x, i, i).max(s.s(&x, j, j)) + 1e-12);
            }
        }
    }

    #[test]
    fn jaccard_alt_metric() {
        let x = attrs();
        // Supports: {0,1}, {0,2}, {3,4}, {3,4,5}.
        assert!((alt_f(&x, AltMetricFn::Jaccard, 0, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((alt_f(&x, AltMetricFn::Jaccard, 2, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(alt_f(&x, AltMetricFn::Jaccard, 0, 2), 0.0);
        let s = ExactSnas::new_alt(&x, AltMetricFn::Jaccard).unwrap();
        assert!(s.s(&x, 2, 3) > s.s(&x, 0, 3));
    }

    #[test]
    fn pearson_alt_metric_detects_correlation() {
        let x = attrs();
        let same = alt_f(&x, AltMetricFn::Pearson, 2, 3);
        let diff = alt_f(&x, AltMetricFn::Pearson, 0, 2);
        assert!(same > diff, "same {same} diff {diff}");
        let self_corr = alt_f(&x, AltMetricFn::Pearson, 0, 0);
        assert!((self_corr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_attributes() {
        let x = AttributeMatrix::empty(3);
        assert!(ExactSnas::new(&x, MetricFn::Cosine).is_err());
        assert!(ExactSnas::new_alt(&x, AltMetricFn::Jaccard).is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        let x = attrs();
        assert!(ExactSnas::new(&x, MetricFn::ExpCosine { delta: 0.0 }).is_err());
    }
}
