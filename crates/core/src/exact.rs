//! Exact (dense, non-local) BDD references.
//!
//! Two equivalent formulations are implemented so tests can cross-check
//! the paper's Section III-A problem transformation:
//!
//! * Eq. 5 directly: `ρ_t = Σ_{i,j} π(s,i) · s(i,j) · π(t,j)` — needs the
//!   full RWR matrix, `O(n·m + n²)`; tiny graphs only.
//! * Eq. 8: `ρ_t = (1/d_t) Σ_i φ_i · π(i,t)` with
//!   `φ_i = Σ_j π(s,j) · s(j,i) · d(i)` — one forward RWR plus one
//!   diffusion, `O(n² + m)`.

use crate::snas::ExactSnas;
use crate::{MetricFn, Tnam};
use laca_diffusion::exact::{exact_diffuse, exact_rwr, exact_rwr_matrix};
use laca_diffusion::SparseVec;
use laca_graph::{AttributeMatrix, CsrGraph, NodeId};

/// Exact BDD by the Eq. 8 transformation, with an arbitrary SNAS oracle.
fn exact_bdd_impl(
    graph: &CsrGraph,
    s: impl Fn(usize, usize) -> f64,
    seed: NodeId,
    alpha: f64,
    tol: f64,
) -> Vec<f64> {
    let n = graph.n();
    let pi_s = exact_rwr(graph, seed, alpha, tol);
    // φ_i = d(v_i) · Σ_j π(s, j) · s(j, i).
    let mut phi = SparseVec::new();
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &p) in pi_s.iter().enumerate() {
            if p > 0.0 {
                acc += p * s(j, i);
            }
        }
        phi.set(i as NodeId, acc * graph.weighted_degree(i as NodeId));
    }
    let diffused = exact_diffuse(graph, &phi, alpha, tol);
    (0..n).map(|t| diffused[t] / graph.weighted_degree(t as NodeId)).collect()
}

/// Exact BDD with the exact SNAS (Eq. 1).
pub fn exact_bdd(
    graph: &CsrGraph,
    attrs: &AttributeMatrix,
    metric: MetricFn,
    seed: NodeId,
    alpha: f64,
    tol: f64,
) -> Result<Vec<f64>, crate::CoreError> {
    let snas = ExactSnas::new(attrs, metric)?;
    Ok(exact_bdd_impl(graph, |i, j| snas.s(attrs, i, j), seed, alpha, tol))
}

/// Exact BDD with the *factorized* SNAS `s := z⁽ⁱ⁾·z⁽ʲ⁾` — the reference
/// for Theorem V.4, whose bound assumes Eq. 10 holds exactly.
pub fn exact_bdd_with_tnam(
    graph: &CsrGraph,
    tnam: &Tnam,
    seed: NodeId,
    alpha: f64,
    tol: f64,
) -> Vec<f64> {
    exact_bdd_impl(graph, |i, j| tnam.s_approx(i, j).max(0.0), seed, alpha, tol)
}

/// Exact BDD with the identity SNAS (`s(i,j) = [i=j]`) — the non-attributed
/// CoSimRank-style variant of the Section II-C remark.
pub fn exact_bdd_identity(graph: &CsrGraph, seed: NodeId, alpha: f64, tol: f64) -> Vec<f64> {
    exact_bdd_impl(graph, |i, j| if i == j { 1.0 } else { 0.0 }, seed, alpha, tol)
}

/// Eq. 5 evaluated literally via the full RWR matrix (`O(n·m + n²)` per
/// seed) — tiny graphs only; used to validate the Eq. 8 transformation.
pub fn exact_bdd_direct(
    graph: &CsrGraph,
    s: impl Fn(usize, usize) -> f64,
    seed: NodeId,
    alpha: f64,
    tol: f64,
) -> Vec<f64> {
    let n = graph.n();
    let pi = exact_rwr_matrix(graph, alpha, tol);
    let mut rho = vec![0.0; n];
    for (t, rho_t) in rho.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (i, &ps) in pi[seed as usize].iter().enumerate() {
            if ps == 0.0 {
                continue;
            }
            for (j, &pt) in pi[t].iter().enumerate() {
                if pt > 0.0 {
                    acc += ps * s(i, j) * pt;
                }
            }
        }
        *rho_t = acc;
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snas::ExactSnas;
    use crate::tnam::TnamConfig;

    fn tiny() -> (CsrGraph, AttributeMatrix) {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let x = AttributeMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 0.5)],
                vec![(0, 1.0)],
                vec![(0, 0.5), (1, 1.0)],
                vec![(2, 1.0), (3, 0.5)],
                vec![(2, 1.0)],
                vec![(3, 1.0)],
            ],
        )
        .unwrap();
        (g, x)
    }

    #[test]
    fn eq8_transformation_matches_direct_eq5() {
        // The central identity of Section III-A, proved via the RWR degree
        // symmetry: both formulations must agree to numerical accuracy.
        let (g, x) = tiny();
        let snas = ExactSnas::new(&x, MetricFn::Cosine).unwrap();
        for seed in 0..6 {
            let via_eq8 = exact_bdd(&g, &x, MetricFn::Cosine, seed, 0.8, 1e-14).unwrap();
            let via_eq5 = exact_bdd_direct(&g, |i, j| snas.s(&x, i, j), seed, 0.8, 1e-14);
            for t in 0..6 {
                assert!(
                    (via_eq8[t] - via_eq5[t]).abs() < 1e-8,
                    "seed {seed}, t {t}: {} vs {}",
                    via_eq8[t],
                    via_eq5[t]
                );
            }
        }
    }

    #[test]
    fn bdd_ranks_same_community_higher() {
        let (g, x) = tiny();
        let rho = exact_bdd(&g, &x, MetricFn::Cosine, 0, 0.8, 1e-14).unwrap();
        // Nodes 0–2 share attributes and a triangle; 3–5 are the other block.
        assert!(rho[1] > rho[4], "rho {rho:?}");
        assert!(rho[2] > rho[5]);
    }

    #[test]
    fn identity_snas_matches_cosimrank_structure() {
        let (g, _) = tiny();
        let rho = exact_bdd_identity(&g, 0, 0.8, 1e-14);
        // ρ_t = Σ_i π(s,i)·π(t,i): maximal at structurally closest nodes.
        assert!(rho[0] >= rho[3]);
        assert!(rho[1] > rho[4]);
    }

    #[test]
    fn tnam_bdd_approximates_exact_bdd() {
        let (g, x) = tiny();
        let tnam = Tnam::build(&x, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
        let approx = exact_bdd_with_tnam(&g, &tnam, 0, 0.8, 1e-14);
        let exact = exact_bdd(&g, &x, MetricFn::Cosine, 0, 0.8, 1e-14).unwrap();
        for t in 0..6 {
            assert!((approx[t] - exact[t]).abs() < 1e-6, "t {t}: {} vs {}", approx[t], exact[t]);
        }
    }

    #[test]
    fn bdd_is_symmetric_under_degree_scaling() {
        // From Eq. 5: ρ(s→t)·? — BDD itself is symmetric in (s,t) since
        // s(·,·) is symmetric and the double sum is. Check ρ_s(t) = ρ_t(s).
        let (g, x) = tiny();
        for s in 0..3u32 {
            for t in 3..6u32 {
                let rho_s = exact_bdd(&g, &x, MetricFn::Cosine, s, 0.8, 1e-14).unwrap();
                let rho_t = exact_bdd(&g, &x, MetricFn::Cosine, t, 0.8, 1e-14).unwrap();
                assert!(
                    (rho_s[t as usize] - rho_t[s as usize]).abs() < 1e-8,
                    "({s},{t}): {} vs {}",
                    rho_s[t as usize],
                    rho_t[s as usize]
                );
            }
        }
    }
}
