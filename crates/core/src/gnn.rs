//! The GNN connection (Section V-C).
//!
//! Lemma V.6: the closed-form solution of graph-signal denoising is the
//! smoother `H = Σ_{ℓ≥0} (1−α)·αˡ·Pˡ·H◦`. With `H◦ = Z` (the TNAM) and the
//! factorized SNAS, the paper shows `ρ_t = h⁽ˢ⁾ · h⁽ᵗ⁾` — LACA computes a
//! K-NN over GNN-style embeddings without materializing them. This module
//! materializes them (densely, truncated) so tests can verify the identity
//! and examples can demonstrate it.

use crate::Tnam;
use laca_graph::{CsrGraph, NodeId};
use laca_linalg::DenseMatrix;

/// Computes the smoothed embeddings `H = Σ_{ℓ=0}^{L} (1−α)·αˡ·Pˡ·Z`
/// densely, truncating once the tail weight `α^{L+1}` drops below `tol`.
///
/// `O(L · m · k)` — a reference implementation for verification, not a
/// local algorithm.
pub fn smooth_embeddings(graph: &CsrGraph, tnam: &Tnam, alpha: f64, tol: f64) -> DenseMatrix {
    let n = graph.n();
    let k = tnam.width();
    // cur = Pˡ·Z rows, initialized to Z.
    let mut cur = DenseMatrix::zeros(n, k);
    for i in 0..n {
        tnam.accumulate_into(cur.row_mut(i), i, 1.0);
    }
    let mut h = DenseMatrix::zeros(n, k);
    let mut weight = 1.0 - alpha;
    let mut tail = 1.0;
    while tail > tol {
        for i in 0..n {
            let crow: Vec<f64> = cur.row(i).to_vec();
            let hrow = h.row_mut(i);
            for (hv, cv) in hrow.iter_mut().zip(&crow) {
                *hv += weight * cv;
            }
        }
        // cur ← P·cur: (P·cur)[i] = Σ_j (w_ij / d(i)) · cur[j].
        let mut next = DenseMatrix::zeros(n, k);
        for i in 0..n {
            let d = graph.weighted_degree(i as NodeId);
            let mut acc = vec![0.0; k];
            for (j, w) in graph.edges_of(i as NodeId) {
                let share = w / d;
                for (a, &v) in acc.iter_mut().zip(cur.row(j as usize)) {
                    *a += share * v;
                }
            }
            next.row_mut(i).copy_from_slice(&acc);
        }
        cur = next;
        weight *= alpha;
        tail *= alpha;
    }
    h
}

/// The BDD value predicted by the GNN identity: `ρ_t = h⁽ˢ⁾ · h⁽ᵗ⁾`.
pub fn bdd_from_embeddings(h: &DenseMatrix, s: NodeId, t: NodeId) -> f64 {
    laca_linalg::dense::dot(h.row(s as usize), h.row(t as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_bdd_with_tnam;
    use crate::tnam::TnamConfig;
    use crate::MetricFn;
    use laca_graph::AttributeMatrix;

    fn setup() -> (CsrGraph, Tnam) {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let x = AttributeMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 0.5)],
                vec![(0, 1.0)],
                vec![(1, 1.0)],
                vec![(2, 1.0)],
                vec![(2, 1.0), (3, 0.5)],
                vec![(3, 1.0)],
            ],
        )
        .unwrap();
        let tnam = Tnam::build(&x, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
        (g, tnam)
    }

    #[test]
    fn gnn_identity_matches_exact_bdd() {
        // Section V-C: ρ_t = h⁽ˢ⁾·h⁽ᵗ⁾ when Eq. 10 holds. The max(·,0)
        // clamp in exact_bdd_with_tnam is inactive here because cosine
        // TNAM entries are non-negative for non-negative attributes.
        let (g, tnam) = setup();
        let h = smooth_embeddings(&g, &tnam, 0.8, 1e-12);
        for s in 0..6u32 {
            let rho = exact_bdd_with_tnam(&g, &tnam, s, 0.8, 1e-14);
            for t in 0..6u32 {
                let via_gnn = bdd_from_embeddings(&h, s, t);
                assert!(
                    (rho[t as usize] - via_gnn).abs() < 1e-6,
                    "s={s} t={t}: {} vs {via_gnn}",
                    rho[t as usize]
                );
            }
        }
    }

    #[test]
    fn embeddings_of_adjacent_nodes_are_smoothed_together() {
        let (g, tnam) = setup();
        let h_raw = smooth_embeddings(&g, &tnam, 0.95, 1e-12);
        // Strong smoothing (α→1) pulls all rows toward a common direction:
        // cosine between any two rows should be high.
        let cos = |a: &[f64], b: &[f64]| {
            let d = laca_linalg::dense::dot(a, b);
            let na = laca_linalg::dense::norm2(a);
            let nb = laca_linalg::dense::norm2(b);
            d / (na * nb)
        };
        assert!(cos(h_raw.row(0), h_raw.row(3)) > 0.5);
    }

    #[test]
    fn zero_alpha_returns_initial_features() {
        // α→0: H = (1−α)·Z + O(α) ≈ Z.
        let (g, tnam) = setup();
        let h = smooth_embeddings(&g, &tnam, 1e-9, 1e-12);
        for i in 0..6 {
            for j in 0..6 {
                let expect = tnam.s_approx(i, j);
                let got = laca_linalg::dense::dot(h.row(i), h.row(j));
                assert!((got - expect).abs() < 1e-6);
            }
        }
    }
}
