//! Cluster extraction from a score vector.
//!
//! The paper's evaluation protocol (Section VI-B) extracts the `|Cs| = |Ys|`
//! nodes with the largest BDD values. The classic alternative — the sweep
//! cut minimizing conductance along the score order — is also provided; the
//! LGC baselines use it when a target size is not imposed.

use laca_diffusion::SparseVec;
use laca_graph::{CsrGraph, NodeId};
use rustc_hash::FxHashSet;

/// The `size` nodes with the largest scores, seed always included.
///
/// Deterministic: ties break by node id. If the score support is smaller
/// than `size`, the result is simply shorter (the caller decides whether to
/// pad; precision evaluation does not reward padding with random nodes).
pub fn top_k_cluster(score: &SparseVec, seed: NodeId, size: usize) -> Vec<NodeId> {
    if size == 0 {
        return vec![seed];
    }
    let ranked = score.to_ranked_pairs();
    let mut cluster = Vec::with_capacity(size);
    let mut has_seed = false;
    for &(v, _) in ranked.iter().take(size) {
        if v == seed {
            has_seed = true;
        }
        cluster.push(v);
    }
    if !has_seed {
        if cluster.len() == size {
            cluster.pop();
        }
        cluster.insert(0, seed);
    }
    cluster
}

/// Same extraction from a dense score vector (global baselines produce
/// dense scores).
pub fn top_k_cluster_dense(score: &[f64], seed: NodeId, size: usize) -> Vec<NodeId> {
    let mut ranked: Vec<(NodeId, f64)> = score
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(i, &v)| (i as NodeId, v))
        .collect();
    ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let sparse = SparseVec::from_pairs(ranked.into_iter().take(size + 1));
    top_k_cluster(&sparse, seed, size)
}

/// Sweep cut: scans prefixes of the score order and returns the prefix with
/// the smallest conductance, together with that conductance.
///
/// Runs in `O(vol(supp(score)))` using incremental cut/volume maintenance.
pub fn sweep_cut(graph: &CsrGraph, score: &SparseVec) -> (Vec<NodeId>, f64) {
    let ranked = score.to_ranked_pairs();
    if ranked.is_empty() {
        return (Vec::new(), 1.0);
    }
    let total_vol = graph.total_volume();
    let mut in_set: FxHashSet<NodeId> = FxHashSet::default();
    let mut cut = 0.0;
    let mut vol = 0.0;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 1usize;
    for (idx, &(v, _)) in ranked.iter().enumerate() {
        let d = graph.weighted_degree(v);
        vol += d;
        // Adding v: edges to the current set stop being cut; the rest start.
        let mut to_set = 0.0;
        for (u, w) in graph.edges_of(v) {
            if in_set.contains(&u) {
                to_set += w;
            }
        }
        cut += d - 2.0 * to_set;
        in_set.insert(v);
        let denom = vol.min(total_vol - vol);
        let phi = if denom <= 0.0 { 1.0 } else { cut / denom };
        if phi < best_phi {
            best_phi = phi;
            best_len = idx + 1;
        }
    }
    let cluster = ranked.iter().take(best_len).map(|&(v, _)| v).collect();
    (cluster, best_phi.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        // Two triangles joined by one edge: the sweep must find a triangle.
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn top_k_takes_largest() {
        let score = SparseVec::from_pairs([(0, 0.9), (1, 0.5), (2, 0.7), (3, 0.1)]);
        assert_eq!(top_k_cluster(&score, 0, 2), vec![0, 2]);
    }

    #[test]
    fn top_k_forces_seed_membership() {
        let score = SparseVec::from_pairs([(1, 0.9), (2, 0.8), (3, 0.7)]);
        let c = top_k_cluster(&score, 5, 2);
        assert!(c.contains(&5));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn top_k_handles_small_support() {
        let score = SparseVec::from_pairs([(0, 1.0)]);
        let c = top_k_cluster(&score, 0, 10);
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn top_k_zero_size() {
        let score = SparseVec::from_pairs([(1, 1.0)]);
        assert_eq!(top_k_cluster(&score, 7, 0), vec![7]);
    }

    #[test]
    fn dense_extraction_matches_sparse() {
        let dense = vec![0.9, 0.5, 0.7, 0.1];
        let sparse = SparseVec::from_pairs([(0, 0.9), (1, 0.5), (2, 0.7), (3, 0.1)]);
        assert_eq!(top_k_cluster_dense(&dense, 0, 3), top_k_cluster(&sparse, 0, 3));
    }

    #[test]
    fn sweep_finds_the_triangle() {
        let g = two_triangles();
        let score = SparseVec::from_pairs([(0, 1.0), (1, 0.9), (2, 0.8), (3, 0.2), (4, 0.1)]);
        let (cluster, phi) = sweep_cut(&g, &score);
        let mut sorted = cluster.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // Triangle: cut 1, vol 7 (node 2 has degree 3) → φ = 1/7.
        assert!((phi - 1.0 / 7.0).abs() < 1e-12, "phi {phi}");
    }

    #[test]
    fn sweep_on_empty_score() {
        let g = two_triangles();
        let (cluster, phi) = sweep_cut(&g, &SparseVec::new());
        assert!(cluster.is_empty());
        assert_eq!(phi, 1.0);
    }

    #[test]
    fn sweep_conductance_matches_graph_conductance() {
        let g = two_triangles();
        let score = SparseVec::from_pairs([(3, 1.0), (4, 0.9), (5, 0.8), (0, 0.05)]);
        let (cluster, phi) = sweep_cut(&g, &score);
        assert!((g.conductance(&cluster) - phi).abs() < 1e-12);
    }
}
