//! Transformed node-attribute matrix `Z` (TNAM, Algo. 3).
//!
//! The goal is a factorization `s(v_i, v_j) = z⁽ⁱ⁾ · z⁽ʲ⁾` (Eq. 10): first
//! find `y⁽ⁱ⁾` with `f(v_i, v_j) ≈ y⁽ⁱ⁾ · y⁽ʲ⁾`, then normalize with the
//! shared sum vector `y* = Σ_ℓ y⁽ˡ⁾` (Eq. 18):
//!
//! * **cosine** — `Y = UΛ` from the randomized k-SVD (Lemma V.1);
//! * **exp-cosine** — orthogonal random features of `UΛ` (Eq. 19, with the
//!   unbiased scaling; see `laca_linalg::orf`).
//!
//! The `use_svd = false` configurations implement the "w/o k-SVD" ablation
//! of Table VI: cosine keeps `Y = X` in sparse form (so `z⁽ⁱ⁾` is a scaled
//! sparse row and `ψ` is a `d`-dimensional accumulator); exp-cosine draws
//! the random features directly from the `d`-dimensional rows.

use crate::{CoreError, MetricFn};
use laca_graph::AttributeMatrix;
use laca_linalg::dense::{dot, PAR_FLOP_THRESHOLD};
use laca_linalg::qr::householder_qr;
use laca_linalg::random::{chi, gaussian_matrix};
use laca_linalg::{orf, randomized_svd, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration for [`Tnam::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct TnamConfig {
    /// TNAM dimension `k` (the paper uses 32 by default; Fig. 9(e,f) sweeps
    /// `{8, 16, 32, 64, 128, d}`).
    pub k: usize,
    /// The metric function (LACA (C) vs LACA (E)).
    pub metric: MetricFn,
    /// `false` disables the k-SVD (Table VI "w/o k-SVD").
    pub use_svd: bool,
    /// Randomized-SVD oversampling (default 8).
    pub oversample: usize,
    /// Randomized-SVD power iterations (default 2).
    pub power_iters: usize,
    /// RNG seed for the SVD sketch and the random features.
    pub seed: u64,
}

impl TnamConfig {
    /// Paper defaults: `k = 32`, cosine metric.
    pub fn new(k: usize, metric: MetricFn) -> Self {
        TnamConfig { k, metric, use_svd: true, oversample: 8, power_iters: 2, seed: 0x7A17 }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the k-SVD (ablation).
    pub fn without_svd(mut self) -> Self {
        self.use_svd = false;
        self
    }

    /// Stable digest of every field that affects the built TNAM's rows
    /// (floats hashed by bit pattern). Together with
    /// [`crate::LacaParams::fingerprint`] this forms an index's identity:
    /// serving layers fold it into cache/routing keys so two TNAMs built
    /// with different `k`, metric, seed or ablation flags can never be
    /// conflated.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.k.hash(&mut h);
        match self.metric {
            MetricFn::Cosine => 0u8.hash(&mut h),
            MetricFn::ExpCosine { delta } => {
                1u8.hash(&mut h);
                delta.to_bits().hash(&mut h);
            }
        }
        self.use_svd.hash(&mut h);
        self.oversample.hash(&mut h);
        self.power_iters.hash(&mut h);
        self.seed.hash(&mut h);
        h.finish()
    }
}

/// Row storage of `Z`.
#[derive(Debug, Clone)]
enum Rows {
    /// Dense `n × width` matrix of `z` rows.
    Dense(DenseMatrix),
    /// `z⁽ⁱ⁾ = scale_i · x⁽ⁱ⁾` over the sparse attribute rows
    /// (cosine without k-SVD).
    SparseScaled { attrs: AttributeMatrix, scales: Vec<f64> },
}

/// The TNAM `Z ∈ R^{n×width}` with `s(v_i, v_j) ≈ z⁽ⁱ⁾ · z⁽ʲ⁾`.
#[derive(Debug, Clone)]
pub struct Tnam {
    rows: Rows,
    width: usize,
    n: usize,
    metric: MetricFn,
    /// [`TnamConfig::fingerprint`] of the config this TNAM was built with.
    fingerprint: u64,
}

/// A borrowed view of a [`Tnam`]'s row storage, exposed so serializers
/// (`laca-persist`) can write the backing arrays verbatim without the
/// crate leaking its private `Rows` enum. The inverse operations are
/// [`Tnam::from_dense_parts`] and [`Tnam::from_sparse_scaled_parts`].
#[derive(Debug, Clone, Copy)]
pub enum TnamRowsView<'a> {
    /// Dense `n × width` row matrix (the k-SVD and ORF configurations).
    Dense(&'a DenseMatrix),
    /// `z⁽ⁱ⁾ = scales[i] · x⁽ⁱ⁾` over sparse attribute rows (the cosine
    /// "w/o k-SVD" ablation).
    SparseScaled {
        /// The shared sparse attribute rows `x⁽ⁱ⁾`.
        attrs: &'a AttributeMatrix,
        /// Per-row scale factors (length `n`).
        scales: &'a [f64],
    },
}

impl Tnam {
    /// Runs Algo. 3. Cost is `O(n·d)` (Lemma V.3) for the SVD
    /// configurations; the k-SVD and ORF kernels run on the rayon pool
    /// and produce bit-identical rows for any thread count.
    ///
    /// # Example
    ///
    /// ```
    /// use laca_core::{MetricFn, Tnam, TnamConfig};
    /// use laca_graph::AttributeMatrix;
    ///
    /// // Six nodes in two attribute blocks over six dimensions.
    /// let rows: Vec<Vec<(u32, f64)>> = (0..6)
    ///     .map(|i| {
    ///         let base: u32 = if i < 3 { 0 } else { 3 };
    ///         vec![(base, 2.0), (base + 1, 1.0)]
    ///     })
    ///     .collect();
    /// let attrs = AttributeMatrix::from_rows(6, &rows).unwrap();
    ///
    /// // Offline: factorize the SNAS once (s(i, j) ≈ z⁽ⁱ⁾ · z⁽ʲ⁾).
    /// let tnam = Tnam::build(&attrs, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
    /// assert_eq!(tnam.width(), 4);
    /// // Same-block pairs are more similar than cross-block pairs.
    /// assert!(tnam.s_approx(0, 1) > tnam.s_approx(0, 4));
    /// ```
    pub fn build(attrs: &AttributeMatrix, config: &TnamConfig) -> Result<Self, CoreError> {
        if attrs.is_empty() {
            return Err(CoreError::NoAttributes);
        }
        if config.k == 0 {
            return Err(CoreError::BadParameter("k must be >= 1"));
        }
        let n = attrs.n();
        let metric = config.metric;
        let rows = match (metric, config.use_svd) {
            (MetricFn::Cosine, true) => {
                let svd = randomized_svd(
                    attrs,
                    config.k,
                    config.oversample,
                    config.power_iters,
                    config.seed,
                )?;
                Rows::Dense(normalize_dense(svd.u_sigma())?)
            }
            (MetricFn::Cosine, false) => {
                // y⁽ⁱ⁾ = x⁽ⁱ⁾; y* = Σ_ℓ x⁽ˡ⁾; scale_i = 1/√(x⁽ⁱ⁾·y*).
                let ones = vec![1.0; n];
                let ystar = attrs.mul_transpose_vec(&ones)?;
                let norms = attrs.mul_vec(&ystar)?;
                let scales =
                    norms.iter().map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 0.0 }).collect();
                Rows::SparseScaled { attrs: attrs.clone(), scales }
            }
            (MetricFn::ExpCosine { delta }, true) => {
                if delta <= 0.0 {
                    return Err(CoreError::BadParameter("delta must be > 0"));
                }
                let svd = randomized_svd(
                    attrs,
                    config.k,
                    config.oversample,
                    config.power_iters,
                    config.seed,
                )?;
                let y = orf::orf_exp_features(&svd.u_sigma(), delta, config.seed ^ 0x0F0F)?;
                Rows::Dense(normalize_dense(y)?)
            }
            (MetricFn::ExpCosine { delta }, false) => {
                if delta <= 0.0 {
                    return Err(CoreError::BadParameter("delta must be > 0"));
                }
                let y = orf_from_sparse(attrs, config.k, delta, config.seed ^ 0x0F0F)?;
                Rows::Dense(normalize_dense(y)?)
            }
        };
        let width = match &rows {
            Rows::Dense(z) => z.cols(),
            Rows::SparseScaled { attrs, .. } => attrs.dim(),
        };
        Ok(Tnam { rows, width, n, metric, fingerprint: config.fingerprint() })
    }

    /// Reassembles a dense-row TNAM from owned parts, as previously
    /// exposed by [`Tnam::rows_view`]. The deserialization entry point:
    /// `z` is adopted verbatim (no renormalization — a round trip is
    /// bit-identical) and `fingerprint` must be the
    /// [`TnamConfig::fingerprint`] the rows were originally built with,
    /// so cache/routing identity survives persistence. Fails closed on
    /// structurally invalid parts (empty matrix, non-finite entries).
    pub fn from_dense_parts(
        z: DenseMatrix,
        metric: MetricFn,
        fingerprint: u64,
    ) -> Result<Self, CoreError> {
        if z.rows() == 0 || z.cols() == 0 {
            return Err(CoreError::BadParameter("TNAM rows must be non-empty"));
        }
        if z.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(CoreError::BadParameter("TNAM rows must be finite"));
        }
        let (n, width) = (z.rows(), z.cols());
        Ok(Tnam { rows: Rows::Dense(z), width, n, metric, fingerprint })
    }

    /// Reassembles a sparse-scaled TNAM (the cosine "w/o k-SVD"
    /// representation) from owned parts. `scales` must carry one finite
    /// factor per attribute row; the metric is necessarily
    /// [`MetricFn::Cosine`] — no other configuration produces this
    /// storage. See [`Tnam::from_dense_parts`] for the fingerprint
    /// contract.
    pub fn from_sparse_scaled_parts(
        attrs: AttributeMatrix,
        scales: Vec<f64>,
        fingerprint: u64,
    ) -> Result<Self, CoreError> {
        if attrs.is_empty() {
            return Err(CoreError::NoAttributes);
        }
        if scales.len() != attrs.n() {
            return Err(CoreError::BadParameter("TNAM scales must cover every row"));
        }
        if scales.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::BadParameter("TNAM scales must be finite"));
        }
        let (n, width) = (attrs.n(), attrs.dim());
        Ok(Tnam {
            rows: Rows::SparseScaled { attrs, scales },
            width,
            n,
            metric: MetricFn::Cosine,
            fingerprint,
        })
    }

    /// A borrowed view of the row storage for serializers; see
    /// [`TnamRowsView`].
    pub fn rows_view(&self) -> TnamRowsView<'_> {
        match &self.rows {
            Rows::Dense(z) => TnamRowsView::Dense(z),
            Rows::SparseScaled { attrs, scales } => TnamRowsView::SparseScaled { attrs, scales },
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The [`TnamConfig::fingerprint`] this TNAM was built with — its
    /// identity for cache/routing keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Width of the `z` rows (`k` for cosine, `2k` for exp-cosine, `d` for
    /// the sparse ablation).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The metric this TNAM factorizes.
    pub fn metric(&self) -> MetricFn {
        self.metric
    }

    /// Approximate SNAS `s(v_i, v_j) ≈ z⁽ⁱ⁾ · z⁽ʲ⁾` (Eq. 10).
    pub fn s_approx(&self, i: usize, j: usize) -> f64 {
        match &self.rows {
            Rows::Dense(z) => dot(z.row(i), z.row(j)),
            Rows::SparseScaled { attrs, scales } => scales[i] * scales[j] * attrs.dot(i, j),
        }
    }

    /// A zeroed `ψ` accumulator of the right width (Eq. 12).
    pub fn new_accumulator(&self) -> Vec<f64> {
        vec![0.0; self.width]
    }

    /// `acc += coeff · z⁽ⁱ⁾` — one term of Eq. 12.
    pub fn accumulate_into(&self, acc: &mut [f64], i: usize, coeff: f64) {
        match &self.rows {
            Rows::Dense(z) => {
                for (a, &v) in acc.iter_mut().zip(z.row(i)) {
                    *a += coeff * v;
                }
            }
            Rows::SparseScaled { attrs, scales } => {
                let c = coeff * scales[i];
                let (idx, val) = attrs.row(i);
                for (&j, &v) in idx.iter().zip(val) {
                    acc[j as usize] += c * v;
                }
            }
        }
    }

    /// `ψ · z⁽ⁱ⁾` — the inner product of Eq. 13.
    pub fn dot_row(&self, acc: &[f64], i: usize) -> f64 {
        match &self.rows {
            Rows::Dense(z) => dot(acc, z.row(i)),
            Rows::SparseScaled { attrs, scales } => {
                let (idx, val) = attrs.row(i);
                let mut out = 0.0;
                for (&j, &v) in idx.iter().zip(val) {
                    out += acc[j as usize] * v;
                }
                out * scales[i]
            }
        }
    }
}

// The TNAM (both row representations) is shared read-only across serving
// threads; any future interior mutability must fail here, not at runtime.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tnam>();
    assert_send_sync::<Rows>();
};

/// Applies Eq. 18: `z⁽ⁱ⁾ = y⁽ⁱ⁾ / √(y⁽ⁱ⁾ · y*)`. Rows whose normalizer is
/// non-positive (possible under random-feature noise) are zeroed, which
/// drops them from all similarity sums rather than amplifying noise.
///
/// The `y*` reduction stays serial (`O(n·w)` additions, order-sensitive);
/// the per-row scaling is parallel — each row's arithmetic is exactly the
/// serial loop's, so `Z` is bit-identical for any thread count.
fn normalize_dense(y: DenseMatrix) -> Result<DenseMatrix, CoreError> {
    let n = y.rows();
    let w = y.cols();
    let mut ystar = vec![0.0; w];
    for i in 0..n {
        for (s, &v) in ystar.iter_mut().zip(y.row(i)) {
            *s += v;
        }
    }
    let mut z = y;
    let rescale = |row: &mut [f64]| {
        let norm = dot(row, &ystar);
        let scale = if norm > 0.0 { 1.0 / norm.sqrt() } else { 0.0 };
        for v in row {
            *v *= scale;
        }
    };
    // Small matrices rescale serially (same arithmetic) — pool dispatch
    // costs more than it saves.
    if w == 0 || n * w < PAR_FLOP_THRESHOLD {
        for i in 0..n {
            rescale(z.row_mut(i));
        }
    } else {
        z.as_mut_slice().par_chunks_mut(w).for_each(rescale);
    }
    Ok(z)
}

/// Orthogonal random features drawn directly from the sparse `d`-dimensional
/// rows (the "w/o k-SVD" configuration of LACA (E)): frequency rows are the
/// scaled columns of the QR factor of a `d × k` Gaussian draw.
fn orf_from_sparse(
    attrs: &AttributeMatrix,
    k: usize,
    delta: f64,
    seed: u64,
) -> Result<DenseMatrix, CoreError> {
    let d = attrs.dim();
    let n = attrs.n();
    let k = k.min(d).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gaussian_matrix(d, k, &mut rng);
    let q = householder_qr(&g).q; // d × k, orthonormal columns
    let inv_sqrt_delta = 1.0 / delta.sqrt();
    // All χ(k) draws happen up front in column order — `mul_vec` consumes
    // no randomness, so the stream is identical to the old interleaved
    // loop and the per-column work below can run on any worker.
    let sigmas: Vec<f64> = (0..k).map(|_| chi(k, &mut rng)).collect();
    // Build Ŷ transposed (k × n: one contiguous row per feature column)
    // so columns parallelize over disjoint slices; transposing back moves
    // values without touching their bits.
    let mut yt_hat = DenseMatrix::zeros(k, n);
    yt_hat.as_mut_slice().par_chunks_mut(n.max(1)).enumerate().for_each(|(c, orow)| {
        let sigma_c = sigmas[c];
        let freq: Vec<f64> = (0..d).map(|r| q.get(r, c) * sigma_c * inv_sqrt_delta).collect();
        // Row i of the column: x⁽ⁱ⁾ · freq, same loop as AttributeMatrix::
        // mul_vec (bit-identical per element).
        for (i, o) in orow.iter_mut().enumerate() {
            let (idx, val) = attrs.row(i);
            let mut acc = 0.0;
            for (&j, &v) in idx.iter().zip(val) {
                acc += v * freq[j as usize];
            }
            *o = acc;
        }
    });
    let y_hat = yt_hat.transpose();
    let scale = ((1.0 / delta).exp() / k as f64).sqrt();
    let mut sin = y_hat.map(f64::sin);
    let mut cos = y_hat.map(f64::cos);
    sin.scale(scale);
    cos.scale(scale);
    Ok(sin.hconcat(&cos)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snas::ExactSnas;

    fn attrs() -> AttributeMatrix {
        // 8 nodes in two attribute blocks over 10 dims.
        let mut rows = Vec::new();
        for i in 0..8u32 {
            let base = if i < 4 { 0 } else { 5 };
            rows.push(vec![(base, 2.0), (base + 1, 1.0 + (i % 3) as f64 * 0.5), (base + 2, 0.5)]);
        }
        AttributeMatrix::from_rows(10, &rows).unwrap()
    }

    #[test]
    fn cosine_tnam_matches_exact_snas_at_full_rank() {
        let x = attrs();
        let cfg = TnamConfig::new(10, MetricFn::Cosine);
        let t = Tnam::build(&x, &cfg).unwrap();
        let exact = ExactSnas::new(&x, MetricFn::Cosine).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let approx = t.s_approx(i, j);
                let truth = exact.s(&x, i, j);
                assert!((approx - truth).abs() < 1e-8, "({i},{j}): {approx} vs {truth}");
            }
        }
    }

    #[test]
    fn sparse_ablation_matches_exact_snas_exactly() {
        let x = attrs();
        let cfg = TnamConfig::new(10, MetricFn::Cosine).without_svd();
        let t = Tnam::build(&x, &cfg).unwrap();
        let exact = ExactSnas::new(&x, MetricFn::Cosine).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                assert!((t.s_approx(i, j) - exact.s(&x, i, j)).abs() < 1e-12);
            }
        }
        assert_eq!(t.width(), 10);
    }

    #[test]
    fn exp_tnam_approximates_exact_snas() {
        let x = attrs();
        let exact = ExactSnas::new(&x, MetricFn::ExpCosine { delta: 1.0 }).unwrap();
        // Average the stochastic estimator over seeds.
        let trials = 60;
        let mut err_acc = 0.0;
        for t in 0..trials {
            let cfg = TnamConfig::new(10, MetricFn::ExpCosine { delta: 1.0 }).with_seed(t);
            let tn = Tnam::build(&x, &cfg).unwrap();
            let mut worst: f64 = 0.0;
            for i in 0..8 {
                for j in 0..8 {
                    worst = worst.max((tn.s_approx(i, j) - exact.s(&x, i, j)).abs());
                }
            }
            err_acc += worst;
        }
        let avg_worst = err_acc / trials as f64;
        assert!(avg_worst < 0.35, "avg worst-pair error {avg_worst}");
    }

    #[test]
    fn accumulator_reproduces_direct_sums() {
        let x = attrs();
        for cfg in [
            TnamConfig::new(6, MetricFn::Cosine),
            TnamConfig::new(6, MetricFn::Cosine).without_svd(),
            TnamConfig::new(6, MetricFn::ExpCosine { delta: 2.0 }),
        ] {
            let t = Tnam::build(&x, &cfg).unwrap();
            // ψ = 0.3·z⁽⁰⁾ + 0.7·z⁽³⁾; then ψ·z⁽ʲ⁾ must equal
            // 0.3·s(0,j) + 0.7·s(3,j).
            let mut psi = t.new_accumulator();
            t.accumulate_into(&mut psi, 0, 0.3);
            t.accumulate_into(&mut psi, 3, 0.7);
            for j in 0..8 {
                let via_acc = t.dot_row(&psi, j);
                let direct = 0.3 * t.s_approx(0, j) + 0.7 * t.s_approx(3, j);
                assert!((via_acc - direct).abs() < 1e-10, "j={j}: {via_acc} vs {direct}");
            }
        }
    }

    #[test]
    fn block_structure_is_preserved() {
        let x = attrs();
        let t = Tnam::build(&x, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
        // Within-block similarity must dominate cross-block (blocks share
        // no attributes).
        let within = t.s_approx(0, 1);
        let cross = t.s_approx(0, 5);
        assert!(within > cross + 0.05, "within {within} cross {cross}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = attrs();
        let cfg = TnamConfig::new(5, MetricFn::ExpCosine { delta: 1.0 }).with_seed(9);
        let a = Tnam::build(&x, &cfg).unwrap();
        let b = Tnam::build(&x, &cfg).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.s_approx(i, j), b.s_approx(i, j));
            }
        }
    }

    #[test]
    fn widths_match_construction() {
        let x = attrs();
        let c = Tnam::build(&x, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
        assert_eq!(c.width(), 4);
        let e = Tnam::build(&x, &TnamConfig::new(4, MetricFn::ExpCosine { delta: 1.0 })).unwrap();
        assert_eq!(e.width(), 8);
    }

    #[test]
    fn rows_view_round_trips_bit_identically() {
        let x = attrs();
        // Dense representation (k-SVD path).
        let dense = Tnam::build(&x, &TnamConfig::new(6, MetricFn::Cosine)).unwrap();
        let rebuilt = match dense.rows_view() {
            TnamRowsView::Dense(z) => {
                Tnam::from_dense_parts(z.clone(), dense.metric(), dense.fingerprint()).unwrap()
            }
            TnamRowsView::SparseScaled { .. } => panic!("k-SVD TNAM must be dense"),
        };
        assert_eq!(rebuilt.width(), dense.width());
        assert_eq!(rebuilt.fingerprint(), dense.fingerprint());
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(dense.s_approx(i, j).to_bits(), rebuilt.s_approx(i, j).to_bits());
            }
        }
        // Sparse-scaled representation (w/o k-SVD ablation).
        let sparse = Tnam::build(&x, &TnamConfig::new(6, MetricFn::Cosine).without_svd()).unwrap();
        let rebuilt = match sparse.rows_view() {
            TnamRowsView::SparseScaled { attrs, scales } => {
                Tnam::from_sparse_scaled_parts(attrs.clone(), scales.to_vec(), sparse.fingerprint())
                    .unwrap()
            }
            TnamRowsView::Dense(_) => panic!("ablation TNAM must be sparse-scaled"),
        };
        assert_eq!(rebuilt.width(), sparse.width());
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(sparse.s_approx(i, j).to_bits(), rebuilt.s_approx(i, j).to_bits());
            }
        }
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        let x = attrs();
        assert!(Tnam::from_dense_parts(DenseMatrix::zeros(0, 4), MetricFn::Cosine, 0).is_err());
        let mut bad = DenseMatrix::zeros(2, 2);
        bad.set(0, 0, f64::NAN);
        assert!(Tnam::from_dense_parts(bad, MetricFn::Cosine, 0).is_err());
        assert!(Tnam::from_sparse_scaled_parts(AttributeMatrix::empty(3), vec![0.0; 3], 0).is_err());
        assert!(Tnam::from_sparse_scaled_parts(x.clone(), vec![1.0; 2], 0).is_err());
        assert!(Tnam::from_sparse_scaled_parts(x, vec![f64::INFINITY; 8], 0).is_err());
    }

    #[test]
    fn rejects_bad_configs() {
        let x = attrs();
        assert!(Tnam::build(&x, &TnamConfig::new(0, MetricFn::Cosine)).is_err());
        assert!(Tnam::build(&x, &TnamConfig::new(4, MetricFn::ExpCosine { delta: -1.0 })).is_err());
        let empty = AttributeMatrix::empty(3);
        assert!(Tnam::build(&empty, &TnamConfig::new(4, MetricFn::Cosine)).is_err());
    }
}
