//! Ablations (Table VI) and alternative BDD estimators (Table X).
//!
//! **Ablations.** [`LacaVariant`] enumerates the four configurations the
//! paper ablates: the full method, "w/o k-SVD" (raw attributes feed the
//! TNAM), "w/o AdaptiveDiffuse" (GreedyDiffuse only) and "w/o SNAS"
//! (topology-only BDD).
//!
//! **BDD alternatives.** Appendix C-1 replaces some of the three diffusion
//! "steps" with attribute-weighted transitions `ρ(v_i, v_j) =
//! π(v_i, v_j)·s(v_i, v_j)` restricted to edges. We realize each `RS` step
//! as an RWR diffusion over the *SNAS-reweighted graph* (edge `(u,v)`
//! carries weight `max(z⁽ᵘ⁾·z⁽ᵛ⁾, w_min)`) and each `R` step as an RWR
//! diffusion over the plain graph, mirroring LACA's own three-step
//! pipeline. This keeps the estimators local (the paper's own
//! implementations are diffusion-based too) while preserving exactly the
//! property Table X probes: *where* attribute similarity enters the walk.

use crate::laca::DiffusionBackend;
use crate::{CoreError, Laca, LacaParams, Tnam, TnamConfig};
use laca_diffusion::workspace::with_thread_workspace;
use laca_diffusion::{adaptive_diffuse_in, DiffusionParams, SparseVec};
use laca_graph::{AttributeMatrix, CsrGraph, NodeId};

/// The four configurations of the Table VI ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LacaVariant {
    /// Full LACA.
    Full,
    /// TNAM built from raw attributes (no k-SVD denoising).
    WithoutKSvd,
    /// GreedyDiffuse replaces AdaptiveDiffuse.
    WithoutAdaptive,
    /// Attribute information disabled entirely.
    WithoutSnas,
}

impl LacaVariant {
    /// All variants, in Table VI row order.
    pub const ALL: [LacaVariant; 4] = [
        LacaVariant::Full,
        LacaVariant::WithoutKSvd,
        LacaVariant::WithoutAdaptive,
        LacaVariant::WithoutSnas,
    ];

    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            LacaVariant::Full => "LACA",
            LacaVariant::WithoutKSvd => "w/o k-SVD",
            LacaVariant::WithoutAdaptive => "w/o AdaptiveDiffuse",
            LacaVariant::WithoutSnas => "w/o SNAS",
        }
    }

    /// Builds the TNAM this variant needs (`None` for w/o SNAS).
    pub fn build_tnam(
        &self,
        attrs: &AttributeMatrix,
        base: &TnamConfig,
    ) -> Result<Option<Tnam>, CoreError> {
        match self {
            LacaVariant::WithoutSnas => Ok(None),
            LacaVariant::WithoutKSvd => {
                let cfg = base.clone().without_svd();
                Ok(Some(Tnam::build(attrs, &cfg)?))
            }
            _ => Ok(Some(Tnam::build(attrs, base)?)),
        }
    }

    /// Adjusts the query parameters for this variant.
    pub fn adjust_params(&self, mut params: LacaParams) -> LacaParams {
        match self {
            LacaVariant::WithoutAdaptive => {
                params.backend = DiffusionBackend::Greedy;
                params
            }
            LacaVariant::WithoutSnas => params.without_snas(),
            _ => params,
        }
    }
}

/// One step of the Appendix C-1 walk: plain (`R`) or SNAS-weighted (`RS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStep {
    /// RWR over the plain transition matrix.
    R,
    /// RWR over the SNAS-reweighted transition matrix.
    RS,
}

/// The four alternative estimators of Table X, by their step patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddVariant(pub [WalkStep; 3]);

impl BddVariant {
    /// All four Table X rows.
    pub const ALL: [BddVariant; 4] = [
        BddVariant([WalkStep::RS, WalkStep::RS, WalkStep::RS]),
        BddVariant([WalkStep::R, WalkStep::RS, WalkStep::RS]),
        BddVariant([WalkStep::RS, WalkStep::R, WalkStep::RS]),
        BddVariant([WalkStep::RS, WalkStep::RS, WalkStep::R]),
    ];

    /// Table row label, e.g. `"RS-RS-RS"`.
    pub fn label(&self) -> String {
        self.0
            .iter()
            .map(|s| match s {
                WalkStep::R => "R",
                WalkStep::RS => "RS",
            })
            .collect::<Vec<_>>()
            .join("-")
    }
}

/// Builds the SNAS-reweighted graph `G_s`: each edge `(u, v)` weighted by
/// `max(z⁽ᵘ⁾·z⁽ᵛ⁾, w_min)` with the TNAM factorization of Eq. 10.
///
/// `O(m)` given the TNAM — the same preprocessing class as APR-Nibble/WFD.
pub fn snas_reweighted_graph(graph: &CsrGraph, tnam: &Tnam, w_min: f64) -> CsrGraph {
    graph.reweighted(w_min, |u, v| tnam.s_approx(u as usize, v as usize).max(0.0))
}

/// Scores a seed with an alternative BDD estimator.
///
/// Pipeline mirrors Algo. 4 with per-step graph selection:
/// step 1 diffuses `1⁽ˢ⁾`, step 2 re-diffuses the result (the edge-restricted
/// "middle transition"), step 3 diffuses degree-scaled mass and divides by
/// degree, each over the step's graph.
pub fn bdd_variant_score(
    plain: &CsrGraph,
    reweighted: &CsrGraph,
    variant: BddVariant,
    seed: NodeId,
    params: &LacaParams,
) -> Result<SparseVec, CoreError> {
    let graph_for = |step: WalkStep| match step {
        WalkStep::R => plain,
        WalkStep::RS => reweighted,
    };
    let dp = |eps: f64| DiffusionParams {
        alpha: params.alpha,
        epsilon: eps,
        sigma: params.sigma,
        record_residuals: false,
    };
    // All three diffusions share the thread's workspace (the plain and
    // reweighted graphs have the same node set, so the scratch fits both).
    with_thread_workspace(|ws| {
        // Step 1.
        let g1 = graph_for(variant.0[0]);
        let pi = adaptive_diffuse_in(g1, &SparseVec::unit(seed), &dp(params.epsilon), ws)?.reserve;
        if pi.is_empty() {
            return Ok(SparseVec::new());
        }
        // Step 2: middle transition.
        let g2 = graph_for(variant.0[1]);
        let mid = adaptive_diffuse_in(g2, &pi, &dp(params.epsilon), ws)?.reserve;
        if mid.is_empty() {
            return Ok(SparseVec::new());
        }
        // Step 3: degree-scaled backward diffusion (as in Algo. 4 lines 5–6).
        let g3 = graph_for(variant.0[2]);
        let mut f = SparseVec::new();
        for (i, v) in mid.iter() {
            f.set(i, v * g3.weighted_degree(i));
        }
        let l1 = f.l1_norm();
        if l1 == 0.0 {
            return Ok(SparseVec::new());
        }
        let out = adaptive_diffuse_in(g3, &f, &dp(params.epsilon * l1), ws)?.reserve;
        let mut rho = SparseVec::new();
        for (i, v) in out.iter() {
            rho.set(i, v / g3.weighted_degree(i));
        }
        Ok(rho)
    })
}

/// Convenience: runs a full ablation query (builds nothing; callers supply
/// the variant's TNAM so preprocessing is measured separately).
pub fn variant_cluster(
    graph: &CsrGraph,
    tnam: Option<&Tnam>,
    variant: LacaVariant,
    params: &LacaParams,
    seed: NodeId,
    size: usize,
) -> Result<Vec<NodeId>, CoreError> {
    let params = variant.adjust_params(params.clone());
    let engine = Laca::new(graph, tnam, params)?;
    engine.cluster(seed, size)
}

/// Builds a TNAM for a brute-force alternative-similarity LACA run
/// (Table XI): the *exact* alternative SNAS matrix is factorized by… not
/// factorizing at all. Instead we return the exact similarity oracle and a
/// dense scorer; see [`alt_snas_bdd`].
pub struct AltSnasOracle {
    snas: crate::snas::ExactSnas,
    attrs: AttributeMatrix,
}

impl AltSnasOracle {
    /// Precomputes the Eq. 1 denominators for an alternative metric.
    /// `O(n²)` — the paper reports the same limitation (Pearson could not
    /// finish large datasets).
    pub fn new(
        attrs: &AttributeMatrix,
        metric: crate::snas::AltMetricFn,
    ) -> Result<Self, CoreError> {
        Ok(AltSnasOracle {
            snas: crate::snas::ExactSnas::new_alt(attrs, metric)?,
            attrs: attrs.clone(),
        })
    }

    /// The SNAS value.
    pub fn s(&self, i: usize, j: usize) -> f64 {
        self.snas.s(&self.attrs, i, j)
    }
}

/// LACA with a brute-force alternative SNAS (Table XI): Step 2 computes
/// `φ'_i = d(v_i) · Σ_{j ∈ supp(π')} π'_j · s(j, i)` for all `i ∈ supp(π')`
/// directly from the oracle (quadratic in the support size, which is
/// bounded by `O(1/ε)`).
pub fn alt_snas_bdd(
    graph: &CsrGraph,
    oracle: &AltSnasOracle,
    seed: NodeId,
    params: &LacaParams,
) -> Result<SparseVec, CoreError> {
    let dp = |eps: f64| DiffusionParams {
        alpha: params.alpha,
        epsilon: eps,
        sigma: params.sigma,
        record_residuals: false,
    };
    with_thread_workspace(|ws| {
        let pi =
            adaptive_diffuse_in(graph, &SparseVec::unit(seed), &dp(params.epsilon), ws)?.reserve;
        let support: Vec<(NodeId, f64)> = pi.to_sorted_pairs();
        let mut phi = SparseVec::new();
        for &(i, _) in &support {
            let mut acc = 0.0;
            for &(j, pj) in &support {
                acc += pj * oracle.s(j as usize, i as usize);
            }
            phi.set(i, acc * graph.weighted_degree(i));
        }
        let l1 = phi.l1_norm();
        if l1 == 0.0 {
            return Ok(SparseVec::new());
        }
        let out = adaptive_diffuse_in(graph, &phi, &dp(params.epsilon * l1), ws)?.reserve;
        let mut rho = SparseVec::new();
        for (i, v) in out.iter() {
            rho.set(i, v / graph.weighted_degree(i));
        }
        Ok(rho)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::top_k_cluster;
    use crate::MetricFn;
    use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
    use laca_graph::AttributedDataset;

    fn dataset() -> AttributedDataset {
        AttributedGraphSpec {
            n: 150,
            n_clusters: 3,
            avg_degree: 8.0,
            p_intra: 0.85,
            missing_intra: 0.0,
            degree_exponent: 2.5,
            cluster_size_skew: 0.2,
            attributes: Some(AttributeSpec {
                dim: 40,
                topic_words: 10,
                tokens_per_node: 20,
                attr_noise: 0.2,
            }),
            seed: 3,
        }
        .generate("v")
        .unwrap()
    }

    fn precision(cluster: &[NodeId], truth: &[NodeId]) -> f64 {
        let t: std::collections::HashSet<_> = truth.iter().collect();
        cluster.iter().filter(|v| t.contains(v)).count() as f64 / cluster.len() as f64
    }

    #[test]
    fn all_ablation_variants_run_and_full_is_best_or_tied() {
        let ds = dataset();
        let base_cfg = TnamConfig::new(12, MetricFn::Cosine);
        let params = LacaParams::new(1e-5);
        let seed = 0;
        let truth = ds.ground_truth(seed);
        let mut precisions = Vec::new();
        for variant in LacaVariant::ALL {
            let tnam = variant.build_tnam(&ds.attributes, &base_cfg).unwrap();
            let cluster =
                variant_cluster(&ds.graph, tnam.as_ref(), variant, &params, seed, truth.len())
                    .unwrap();
            precisions.push((variant.label(), precision(&cluster, truth)));
        }
        let full = precisions[0].1;
        for &(label, p) in &precisions {
            assert!(p > 0.2, "{label} collapsed: {p}");
        }
        // Full LACA should not be dominated by w/o SNAS on this
        // attribute-informative dataset.
        let wo_snas = precisions[3].1;
        assert!(full >= wo_snas - 0.05, "full {full} vs w/o SNAS {wo_snas}");
    }

    #[test]
    fn variant_labels_are_table_rows() {
        assert_eq!(LacaVariant::Full.label(), "LACA");
        assert_eq!(BddVariant::ALL[0].label(), "RS-RS-RS");
        assert_eq!(BddVariant::ALL[1].label(), "R-RS-RS");
        assert_eq!(BddVariant::ALL[2].label(), "RS-R-RS");
        assert_eq!(BddVariant::ALL[3].label(), "RS-RS-R");
    }

    #[test]
    fn reweighted_graph_preserves_structure() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(12, MetricFn::Cosine)).unwrap();
        let gs = snas_reweighted_graph(&ds.graph, &tnam, 1e-9);
        assert_eq!(gs.n(), ds.graph.n());
        assert_eq!(gs.m(), ds.graph.m());
        assert!(gs.is_weighted());
    }

    #[test]
    fn bdd_variants_score_but_underperform_laca() {
        // Table X's finding: every alternative degrades vs. the real BDD.
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(12, MetricFn::Cosine)).unwrap();
        let params = LacaParams::new(1e-5);
        let gs = snas_reweighted_graph(&ds.graph, &tnam, 1e-9);
        let seed = 1;
        let truth = ds.ground_truth(seed);

        let engine = Laca::new(&ds.graph, Some(&tnam), params.clone()).unwrap();
        let laca_cluster = engine.cluster(seed, truth.len()).unwrap();
        let laca_p = precision(&laca_cluster, truth);

        for variant in BddVariant::ALL {
            let rho = bdd_variant_score(&ds.graph, &gs, variant, seed, &params).unwrap();
            let cluster = top_k_cluster(&rho, seed, truth.len());
            let p = precision(&cluster, truth);
            assert!((0.0..=1.0).contains(&p));
            // Each variant must at least produce a non-trivial cluster.
            assert!(cluster.len() > 1, "{} returned a singleton", variant.label());
            let _ = laca_p; // shape assertion happens at experiment scale
        }
    }

    #[test]
    fn alt_snas_oracle_runs_jaccard_and_pearson() {
        let ds = dataset();
        let params = LacaParams::new(1e-4);
        for metric in [crate::snas::AltMetricFn::Jaccard, crate::snas::AltMetricFn::Pearson] {
            let oracle = AltSnasOracle::new(&ds.attributes, metric).unwrap();
            let rho = alt_snas_bdd(&ds.graph, &oracle, 0, &params).unwrap();
            assert!(!rho.is_empty());
        }
    }
}
