//! LACA — *Adaptive Local Clustering over Attributed Graphs* (ICDE 2025).
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`snas`] — the symmetric normalized attribute similarity (Eq. 1–4),
//!   with exact reference computations plus the Jaccard and Pearson
//!   alternatives of the Table XI ablation,
//! * [`tnam`] — the transformed node-attribute matrix `Z` with
//!   `s(v_i, v_j) = z⁽ⁱ⁾ · z⁽ʲ⁾` (Algo. 3), via randomized k-SVD and
//!   orthogonal random features,
//! * [`laca`] — the three-step online algorithm (Algo. 4) estimating the
//!   bidirectional diffusion distribution (BDD, Eq. 5),
//! * [`exact`] — dense exact BDD references for correctness tests,
//! * [`extract`] — top-`|Cs|` and sweep-cut cluster extraction,
//! * [`variants`] — the ablations of Table VI and the alternative BDD
//!   estimators of Table X,
//! * [`gnn`] — the graph-signal-denoising smoother of Section V-C, used to
//!   verify the GNN connection (`ρ_t = h⁽ˢ⁾ · h⁽ᵗ⁾`).

#![warn(missing_docs)]

pub mod exact;
pub mod extract;
pub mod gnn;
pub mod laca;
pub mod snas;
pub mod tnam;
pub mod variants;

pub use laca::{Laca, LacaParams};
pub use snas::MetricFn;
pub use tnam::{Tnam, TnamConfig, TnamRowsView};

/// Errors from LACA construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying graph error.
    Graph(laca_graph::GraphError),
    /// Underlying linear-algebra error.
    Linalg(laca_linalg::LinalgError),
    /// Underlying diffusion error.
    Diffusion(laca_diffusion::DiffusionError),
    /// The dataset has no usable attributes for an attribute-dependent
    /// operation.
    NoAttributes,
    /// A parameter was out of range.
    BadParameter(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Diffusion(e) => write!(f, "diffusion error: {e}"),
            CoreError::NoAttributes => write!(f, "dataset has no attributes"),
            CoreError::BadParameter(p) => write!(f, "bad parameter: {p}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<laca_graph::GraphError> for CoreError {
    fn from(e: laca_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<laca_linalg::LinalgError> for CoreError {
    fn from(e: laca_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<laca_diffusion::DiffusionError> for CoreError {
    fn from(e: laca_diffusion::DiffusionError) -> Self {
        CoreError::Diffusion(e)
    }
}
