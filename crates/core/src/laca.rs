//! The LACA algorithm (Algo. 4): three-step online BDD estimation.
//!
//! 1. **Estimate RWR** — `π' = AdaptiveDiffuse(P, α, σ, ε, 1⁽ˢ⁾)`;
//! 2. **RWR–SNAS vector** — `ψ = Σ_{i∈supp(π')} π'_i · z⁽ⁱ⁾` (Eq. 12), then
//!    `φ'_i = (ψ · z⁽ⁱ⁾) · d(v_i)` on `supp(π')` (Eq. 13);
//! 3. **Estimate BDD** — `ρ' = AdaptiveDiffuse(P, α, σ, ε·‖φ'‖₁, φ')`,
//!    then divide each entry by its degree.
//!
//! The predicted local cluster is the top-`|Cs|` nodes of `ρ'`
//! (Section II-D). Total time `O(k / ((1−α)·ε))` — Theorem V.4 gives the
//! approximation bound, Lemma IV.3 the output-volume bound.

use crate::extract::top_k_cluster;
use crate::{CoreError, Tnam};
use laca_diffusion::workspace::with_thread_workspace;
use laca_diffusion::{
    adaptive_diffuse_in, batch_diffuse_in, greedy_diffuse_in, nongreedy_diffuse_in, BatchMode,
    BatchWorkspace, DiffusionParams, DiffusionStats, DiffusionWorkspace, SparseVec, MAX_LANES,
};
use laca_graph::{CsrGraph, NodeId};
use std::sync::Arc;

/// Which diffusion solver Algo. 4 invokes (the "w/o AdaptiveDiffuse"
/// ablation of Table VI swaps in GreedyDiffuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffusionBackend {
    /// Algo. 2 (the paper's choice).
    #[default]
    Adaptive,
    /// Algo. 1 (ablation).
    Greedy,
    /// Pure Eq. 17 iteration (reference; no locality bound).
    NonGreedy,
}

/// LACA query parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LacaParams {
    /// RWR continue probability `α ∈ (0, 1)`; the paper's sweeps favor 0.8–0.9.
    pub alpha: f64,
    /// Diffusion threshold `ε`; output volume and cost are `O(1/ε)`.
    pub epsilon: f64,
    /// Greedy/non-greedy balance `σ ∈ [0, 1]` of AdaptiveDiffuse.
    pub sigma: f64,
    /// Diffusion solver selection.
    pub backend: DiffusionBackend,
    /// `false` disables attribute information entirely — the
    /// "LACA (w/o SNAS)" configuration, where the BDD degenerates to the
    /// CoSimRank-style topology-only measure (Section II-C remark).
    pub use_snas: bool,
}

impl LacaParams {
    /// Paper-typical defaults: `α = 0.8`, `σ = 0.1`.
    pub fn new(epsilon: f64) -> Self {
        LacaParams {
            alpha: 0.8,
            epsilon,
            sigma: 0.1,
            backend: DiffusionBackend::Adaptive,
            use_snas: true,
        }
    }

    /// Sets `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `σ`.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// Selects the diffusion backend.
    pub fn with_backend(mut self, backend: DiffusionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Disables the SNAS (topology-only BDD).
    pub fn without_snas(mut self) -> Self {
        self.use_snas = false;
        self
    }

    /// Stable digest of every field that affects query results. Float
    /// params are hashed by bit pattern, so any observable change — even
    /// in the last ulp — changes the fingerprint. This is the *identity*
    /// of a parameterization: serving layers key result caches and
    /// routing tables on it (`laca-service` pairs it with a dataset name
    /// to form a route key), guaranteeing a params change can never serve
    /// stale answers.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.alpha.to_bits().hash(&mut h);
        self.epsilon.to_bits().hash(&mut h);
        self.sigma.to_bits().hash(&mut h);
        let backend: u8 = match self.backend {
            DiffusionBackend::Adaptive => 0,
            DiffusionBackend::Greedy => 1,
            DiffusionBackend::NonGreedy => 2,
        };
        backend.hash(&mut h);
        self.use_snas.hash(&mut h);
        h.finish()
    }
}

/// Telemetry from one LACA query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LacaQueryStats {
    /// Stats of the Step-1 RWR diffusion.
    pub rwr: DiffusionStats,
    /// Stats of the Step-3 BDD diffusion.
    pub bdd: DiffusionStats,
    /// `|supp(π')|`.
    pub rwr_support: usize,
    /// `‖φ'‖₁` fed to Step 3.
    pub phi_l1: f64,
}

/// Either a borrowed or an `Arc`-shared handle to an immutable artifact.
///
/// [`Laca`] historically borrowed its graph and TNAM from the caller
/// (`Laca<'g>`), which is zero-cost for single-threaded loops but cannot
/// cross thread boundaries. The serving layer (`laca-service`) needs one
/// immutable index shared by many worker threads, so each handle can also
/// be an `Arc` — `Laca<'static>` built from Arcs is `Send + Sync`
/// (statically asserted below) and freely clonable across a pool.
#[derive(Debug, Clone)]
enum SharedRef<'g, T> {
    Borrowed(&'g T),
    Owned(Arc<T>),
}

impl<T> SharedRef<'_, T> {
    #[inline]
    fn get(&self) -> &T {
        match self {
            SharedRef::Borrowed(t) => t,
            SharedRef::Owned(t) => t,
        }
    }
}

/// A LACA instance bound to a graph and (optionally) a prebuilt TNAM.
///
/// The TNAM is the reusable preprocessing artifact: build it once per
/// dataset ([`Tnam::build`]), then answer any number of seed queries.
///
/// Construction is either borrowing ([`Laca::new`] — the lifetime ties
/// the engine to the caller's graph) or shared ([`Laca::new_shared`] —
/// `Arc`-backed, `'static`, `Send + Sync`, for cross-thread serving).
#[derive(Debug, Clone)]
pub struct Laca<'g> {
    graph: SharedRef<'g, CsrGraph>,
    tnam: Option<SharedRef<'g, Tnam>>,
    params: LacaParams,
}

fn validate_index(
    graph: &CsrGraph,
    tnam: Option<&Tnam>,
    params: &LacaParams,
) -> Result<(), CoreError> {
    if params.use_snas {
        match tnam {
            None => return Err(CoreError::NoAttributes),
            Some(t) if t.n() != graph.n() => {
                return Err(CoreError::BadParameter("TNAM size does not match graph"))
            }
            _ => {}
        }
    }
    Ok(())
}

impl<'g> Laca<'g> {
    /// Creates a query engine borrowing the caller's graph/TNAM.
    /// `tnam = None` is only valid together with `params.use_snas = false`.
    pub fn new(
        graph: &'g CsrGraph,
        tnam: Option<&'g Tnam>,
        params: LacaParams,
    ) -> Result<Self, CoreError> {
        validate_index(graph, tnam, &params)?;
        Ok(Laca { graph: SharedRef::Borrowed(graph), tnam: tnam.map(SharedRef::Borrowed), params })
    }

    /// Creates a query engine co-owning its graph/TNAM through `Arc`s.
    ///
    /// The result is `Laca<'static>`: it can move into worker threads and
    /// be queried concurrently (all query paths take `&self`). Same
    /// validation rules as [`Laca::new`].
    pub fn new_shared(
        graph: Arc<CsrGraph>,
        tnam: Option<Arc<Tnam>>,
        params: LacaParams,
    ) -> Result<Laca<'static>, CoreError> {
        validate_index(&graph, tnam.as_deref(), &params)?;
        Ok(Laca { graph: SharedRef::Owned(graph), tnam: tnam.map(SharedRef::Owned), params })
    }

    /// The graph this engine queries.
    pub fn graph(&self) -> &CsrGraph {
        self.graph.get()
    }

    /// The TNAM in use, if any.
    pub fn tnam(&self) -> Option<&Tnam> {
        self.tnam.as_ref().map(SharedRef::get)
    }

    /// The parameters in use.
    pub fn params(&self) -> &LacaParams {
        &self.params
    }

    fn diffuse(
        &self,
        f: &SparseVec,
        epsilon: f64,
        ws: &mut DiffusionWorkspace,
    ) -> Result<laca_diffusion::DiffusionResult, CoreError> {
        let dp = DiffusionParams {
            alpha: self.params.alpha,
            epsilon,
            sigma: self.params.sigma,
            record_residuals: false,
        };
        let graph = self.graph.get();
        let out = match self.params.backend {
            DiffusionBackend::Adaptive => adaptive_diffuse_in(graph, f, &dp, ws)?,
            DiffusionBackend::Greedy => greedy_diffuse_in(graph, f, &dp, ws)?,
            DiffusionBackend::NonGreedy => nongreedy_diffuse_in(graph, f, &dp, ws)?,
        };
        Ok(out)
    }

    /// Approximate BDD vector `ρ'` for a seed node, with telemetry.
    ///
    /// Both diffusions (Steps 1 and 3) run on the calling thread's cached
    /// [`DiffusionWorkspace`], so repeated queries — the evaluation
    /// harness's per-seed loops in particular — do no per-query scratch
    /// allocation.
    pub fn bdd_with_stats(&self, seed: NodeId) -> Result<(SparseVec, LacaQueryStats), CoreError> {
        with_thread_workspace(|ws| self.bdd_with_stats_in(seed, ws))
    }

    /// [`Laca::bdd_with_stats`] on a caller-managed workspace.
    pub fn bdd_with_stats_in(
        &self,
        seed: NodeId,
        ws: &mut DiffusionWorkspace,
    ) -> Result<(SparseVec, LacaQueryStats), CoreError> {
        let graph = self.graph.get();
        if seed as usize >= graph.n() {
            return Err(CoreError::BadParameter("seed node out of range"));
        }
        let mut stats = LacaQueryStats::default();

        // Step 1: π' = AdaptiveDiffuse(1⁽ˢ⁾).
        let rwr = self.diffuse(&SparseVec::unit(seed), self.params.epsilon, ws)?;
        stats.rwr = rwr.stats.clone();
        stats.rwr_support = rwr.reserve.support_size();
        let pi = rwr.reserve;

        // Step 2: φ'. Iteration runs over ascending node ids — the same
        // canonical order the batched pipeline uses — so the serial and
        // batched Step-2 float sequences are identical op for op.
        let phi = step2_phi(graph, self.tnam_for_query(), &pi.to_sorted_pairs());
        let phi_l1 = phi.l1_norm();
        stats.phi_l1 = phi_l1;
        if phi_l1 == 0.0 {
            return Ok((SparseVec::new(), stats));
        }

        // Step 3: diffuse φ' with threshold ε·‖φ'‖₁, then divide by degree.
        let bdd = self.diffuse(&phi, self.params.epsilon * phi_l1, ws)?;
        stats.bdd = bdd.stats.clone();
        let rho = step3_rho(graph, &bdd.reserve.to_sorted_pairs());
        Ok((rho, stats))
    }

    /// The TNAM Step 2 should use: `Some` iff SNAS is enabled.
    fn tnam_for_query(&self) -> Option<&Tnam> {
        if self.params.use_snas {
            self.tnam()
        } else {
            None
        }
    }

    /// Approximate BDD vector `ρ'` for a seed node.
    ///
    /// # Example
    ///
    /// ```
    /// use laca_core::{Laca, LacaParams, MetricFn, Tnam, TnamConfig};
    /// use laca_graph::{AttributeMatrix, CsrGraph};
    ///
    /// // Two triangles joined by a bridge.
    /// let graph = CsrGraph::from_edges(6, &[
    ///     (0, 1), (1, 2), (0, 2), // community A
    ///     (3, 4), (4, 5), (3, 5), // community B
    ///     (2, 3),                 // bridge
    /// ]).unwrap();
    /// let rows: Vec<Vec<(u32, f64)>> = (0..6)
    ///     .map(|i| {
    ///         let base: u32 = if i < 3 { 0 } else { 2 };
    ///         vec![(base, 1.0), (base + 1, 0.5)]
    ///     })
    ///     .collect();
    /// let attrs = AttributeMatrix::from_rows(4, &rows).unwrap();
    /// let tnam = Tnam::build(&attrs, &TnamConfig::new(4, MetricFn::Cosine)).unwrap();
    ///
    /// // Online: one diffusion query (Algo. 4) per seed.
    /// let engine = Laca::new(&graph, Some(&tnam), LacaParams::new(1e-4)).unwrap();
    /// let rho = engine.bdd(0).unwrap();
    /// // The seed's own community carries more BDD mass than the other one.
    /// assert!(rho.get(1) > rho.get(5));
    /// ```
    pub fn bdd(&self, seed: NodeId) -> Result<SparseVec, CoreError> {
        Ok(self.bdd_with_stats(seed)?.0)
    }

    /// Predicted local cluster: the `size` nodes with the largest BDD
    /// values (the seed is always included).
    pub fn cluster(&self, seed: NodeId, size: usize) -> Result<Vec<NodeId>, CoreError> {
        let rho = self.bdd(seed)?;
        Ok(top_k_cluster(&rho, seed, size))
    }

    /// Batched Algo. 4: answers many seeds through shared traversals,
    /// each **bit-identical** to its serial [`Laca::bdd_with_stats_in`]
    /// run — same `ρ'` bits, same per-seed iteration/push counts.
    ///
    /// Both diffusions (Steps 1 and 3) run on the batched solver
    /// ([`laca_diffusion::batch`]); Step 2 runs per lane over the same
    /// ascending-order pairs the serial path uses, reading lane reserves
    /// straight out of the batch workspace (no intermediate `π'` maps).
    /// Seeds beyond [`MAX_LANES`] are processed in chunks. Per-seed
    /// failures (seed out of range) error their own lane only.
    pub fn bdd_batch_with_stats_in(
        &self,
        seeds: &[NodeId],
        ws: &mut BatchWorkspace,
    ) -> Vec<Result<(SparseVec, LacaQueryStats), CoreError>> {
        let mut out = Vec::with_capacity(seeds.len());
        for chunk in seeds.chunks(MAX_LANES.max(1)) {
            self.bdd_batch_chunk(chunk, ws, &mut out);
        }
        out
    }

    /// Batched [`Laca::bdd`] on a fresh workspace (bench/tool paths).
    pub fn bdd_batch(&self, seeds: &[NodeId]) -> Vec<Result<SparseVec, CoreError>> {
        let mut ws = BatchWorkspace::new();
        self.bdd_batch_with_stats_in(seeds, &mut ws)
            .into_iter()
            .map(|r| r.map(|(rho, _)| rho))
            .collect()
    }

    /// One ≤ [`MAX_LANES`]-wide chunk of the batched query path.
    fn bdd_batch_chunk(
        &self,
        seeds: &[NodeId],
        ws: &mut BatchWorkspace,
        out: &mut Vec<Result<(SparseVec, LacaQueryStats), CoreError>>,
    ) {
        let graph = self.graph.get();
        let mode = match self.params.backend {
            DiffusionBackend::Adaptive => BatchMode::Adaptive,
            DiffusionBackend::Greedy => BatchMode::Greedy,
            DiffusionBackend::NonGreedy => BatchMode::NonGreedy,
        };
        let dp = DiffusionParams {
            alpha: self.params.alpha,
            epsilon: self.params.epsilon,
            sigma: self.params.sigma,
            record_residuals: false,
        };
        let base = out.len();
        // Per-seed result slots; invalid seeds fail their own lane only.
        let mut units: Vec<SparseVec> = Vec::with_capacity(seeds.len());
        let mut lane_of: Vec<usize> = Vec::with_capacity(seeds.len()); // chunk-relative
        for (i, &seed) in seeds.iter().enumerate() {
            if seed as usize >= graph.n() {
                out.push(Err(CoreError::BadParameter("seed node out of range")));
            } else {
                out.push(Ok((SparseVec::new(), LacaQueryStats::default())));
                units.push(SparseVec::unit(seed));
                lane_of.push(i);
            }
        }
        if units.is_empty() {
            return;
        }

        // Step 1 (batched): π' lanes from unit seeds.
        let unit_refs: Vec<&SparseVec> = units.iter().collect();
        let eps1 = vec![self.params.epsilon; unit_refs.len()];
        let rwr_stats = match batch_diffuse_in(graph, &unit_refs, &eps1, &dp, mode, ws) {
            Ok(stats) => stats,
            Err(e) => {
                for &i in &lane_of {
                    out[base + i] = Err(e.clone().into());
                }
                return;
            }
        };

        // Step 2 (per lane, ascending order — identical to serial): read
        // each lane's sorted reserve straight from the workspace and
        // build φ'. Materialize every φ' before Step 3 re-begins `ws`.
        let tnam = self.tnam_for_query();
        let mut pairs: Vec<(NodeId, f64)> = Vec::new();
        let mut step3_inputs: Vec<SparseVec> = Vec::with_capacity(lane_of.len());
        let mut step3_eps: Vec<f64> = Vec::with_capacity(lane_of.len());
        let mut step3_lane_of: Vec<usize> = Vec::with_capacity(lane_of.len());
        for (k, &i) in lane_of.iter().enumerate() {
            ws.lane_reserve_sorted_into(k, &mut pairs);
            let phi = step2_phi(graph, tnam, &pairs);
            let phi_l1 = phi.l1_norm();
            if let Ok((_, stats)) = &mut out[base + i] {
                stats.rwr = rwr_stats[k].clone();
                stats.rwr_support = ws.lane_support(k);
                stats.phi_l1 = phi_l1;
            }
            if phi_l1 > 0.0 {
                step3_inputs.push(phi);
                step3_eps.push(self.params.epsilon * phi_l1);
                step3_lane_of.push(i);
            }
            // phi_l1 == 0: the serial path returns an empty ρ' with
            // default Step-3 stats — the slot already holds exactly that.
        }
        if step3_inputs.is_empty() {
            return;
        }

        // Step 3 (batched): diffuse every φ' at its own ε·‖φ'‖₁.
        let phi_refs: Vec<&SparseVec> = step3_inputs.iter().collect();
        let bdd_stats = match batch_diffuse_in(graph, &phi_refs, &step3_eps, &dp, mode, ws) {
            Ok(stats) => stats,
            Err(e) => {
                for &i in &step3_lane_of {
                    out[base + i] = Err(e.clone().into());
                }
                return;
            }
        };
        for (k, &i) in step3_lane_of.iter().enumerate() {
            ws.lane_reserve_sorted_into(k, &mut pairs);
            let rho = step3_rho(graph, &pairs);
            if let Ok((slot_rho, stats)) = &mut out[base + i] {
                *slot_rho = rho;
                stats.bdd = bdd_stats[k].clone();
            }
        }
    }
}

/// Step 2 (Eq. 12/13) over a sorted `π'` support: `ψ = Σ π'_i · z⁽ⁱ⁾`,
/// then `φ'_i = max(ψ·z⁽ⁱ⁾, 0) · d(v_i)`; without a TNAM the
/// identity-SNAS degenerate form `φ'_i = π'_i · d(v_i)`.
///
/// Shared by the serial and batched query paths — both feed pairs in
/// ascending node order, so per seed the float op sequence (and the `φ'`
/// map layout, which fixes the `l1_norm` summation order) is identical.
fn step2_phi(graph: &CsrGraph, tnam: Option<&Tnam>, pairs: &[(NodeId, f64)]) -> SparseVec {
    match tnam {
        Some(tnam) => {
            let mut psi = tnam.new_accumulator();
            for &(i, v) in pairs {
                tnam.accumulate_into(&mut psi, i as usize, v);
            }
            let mut phi = SparseVec::new();
            for &(i, _) in pairs {
                // Random-feature noise can push ψ·z⁽ⁱ⁾ slightly below
                // zero; clamp so Step 3's input stays a valid
                // non-negative diffusion vector.
                let val = tnam.dot_row(&psi, i as usize).max(0.0) * graph.weighted_degree(i);
                phi.set(i, val);
            }
            phi
        }
        None => {
            // w/o SNAS: s(v_i, v_j) = [i = j], so φ'_i = π'_i · d(v_i).
            let mut phi = SparseVec::new();
            for &(i, v) in pairs {
                phi.set(i, v * graph.weighted_degree(i));
            }
            phi
        }
    }
}

/// Final degree normalization of Algo. 4 over a sorted BDD reserve:
/// `ρ'_i = q_i / d(v_i)`. Shared by the serial and batched paths.
fn step3_rho(graph: &CsrGraph, pairs: &[(NodeId, f64)]) -> SparseVec {
    let mut rho = SparseVec::new();
    for &(i, v) in pairs {
        rho.set(i, v / graph.weighted_degree(i));
    }
    rho
}

// An Arc-built engine must be shareable across a worker pool. If a future
// change introduces interior mutability (Cell/RefCell/raw pointers) into
// the graph, the TNAM or the engine itself, this stops compiling instead
// of surfacing as a data race at runtime.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Laca<'static>>();
    assert_send_sync::<LacaParams>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_bdd_with_tnam;
    use crate::tnam::TnamConfig;
    use crate::MetricFn;
    use laca_graph::gen::{AttributeSpec, AttributedGraphSpec};
    use laca_graph::AttributedDataset;

    fn dataset() -> AttributedDataset {
        AttributedGraphSpec {
            n: 200,
            n_clusters: 4,
            avg_degree: 8.0,
            p_intra: 0.85,
            missing_intra: 0.05,
            degree_exponent: 2.5,
            cluster_size_skew: 0.2,
            attributes: Some(AttributeSpec {
                dim: 64,
                topic_words: 12,
                tokens_per_node: 25,
                attr_noise: 0.2,
            }),
            seed: 77,
        }
        .generate("laca-test")
        .unwrap()
    }

    #[test]
    fn bdd_satisfies_theorem_v4_bound() {
        // When Eq. 10 holds (s := z·z from the TNAM itself), Theorem V.4:
        // 0 ≤ ρ_t − ρ'_t ≤ (1 + Σ_i d_i · max_j s(i,j)) · ε.
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(16, MetricFn::Cosine)).unwrap();
        let eps = 1e-4;
        let params = LacaParams::new(eps);
        let engine = Laca::new(&ds.graph, Some(&tnam), params).unwrap();
        let seed = 3;
        let rho_approx = engine.bdd(seed).unwrap();
        let rho_exact = exact_bdd_with_tnam(&ds.graph, &tnam, seed, 0.8, 1e-12);
        // Slack term of the bound.
        let mut slack = 1.0;
        for i in 0..ds.graph.n() {
            let max_s = (0..ds.graph.n()).map(|j| tnam.s_approx(i, j)).fold(0.0f64, f64::max);
            slack += ds.graph.weighted_degree(i as u32) * max_s;
        }
        let bound = slack * eps;
        for t in 0..ds.graph.n() as NodeId {
            let gap = rho_exact[t as usize] - rho_approx.get(t);
            assert!(gap >= -1e-8, "t={t}: ρ'_t exceeds ρ_t by {}", -gap);
            assert!(gap <= bound + 1e-8, "t={t}: gap {gap} > bound {bound}");
        }
    }

    #[test]
    fn cluster_recovers_planted_community() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(16, MetricFn::Cosine)).unwrap();
        let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-5)).unwrap();
        let seed = 0;
        let truth = ds.ground_truth(seed);
        let cluster = engine.cluster(seed, truth.len()).unwrap();
        let truth_set: std::collections::HashSet<_> = truth.iter().copied().collect();
        let hits = cluster.iter().filter(|v| truth_set.contains(v)).count();
        let precision = hits as f64 / cluster.len() as f64;
        assert!(precision > 0.7, "precision {precision}");
        assert!(cluster.contains(&seed));
    }

    #[test]
    fn exp_cosine_variant_also_recovers_community() {
        let ds = dataset();
        let tnam =
            Tnam::build(&ds.attributes, &TnamConfig::new(16, MetricFn::ExpCosine { delta: 1.0 }))
                .unwrap();
        let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-5)).unwrap();
        let seed = 10;
        let truth = ds.ground_truth(seed);
        let cluster = engine.cluster(seed, truth.len()).unwrap();
        let truth_set: std::collections::HashSet<_> = truth.iter().copied().collect();
        let precision =
            cluster.iter().filter(|v| truth_set.contains(v)).count() as f64 / cluster.len() as f64;
        assert!(precision > 0.6, "precision {precision}");
    }

    #[test]
    fn without_snas_matches_identity_snas_semantics() {
        let ds = dataset();
        let engine = Laca::new(&ds.graph, None, LacaParams::new(1e-5).without_snas()).unwrap();
        let rho = engine.bdd(5).unwrap();
        assert!(!rho.is_empty());
        // Seed should be among its own top nodes.
        let ranked = rho.to_ranked_pairs();
        let pos = ranked.iter().position(|&(v, _)| v == 5).unwrap();
        assert!(pos < 20, "seed ranked at {pos}");
    }

    #[test]
    fn support_is_bounded_by_lemma_iv3() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(8, MetricFn::Cosine)).unwrap();
        let eps = 1e-3;
        let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(eps)).unwrap();
        let (rho, stats) = engine.bdd_with_stats(1).unwrap();
        // Step 3 ran with threshold ε·‖φ'‖₁ on input of mass ‖φ'‖₁, so its
        // support is ≤ 2/( (1−α)·ε ) regardless of ‖φ'‖₁.
        let cap = 2.0 / ((1.0 - 0.8) * eps);
        assert!((rho.support_size() as f64) <= cap, "support {}", rho.support_size());
        assert!(stats.rwr_support > 0);
        assert!(stats.phi_l1 > 0.0);
    }

    #[test]
    fn greedy_backend_is_usable_but_not_better() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(8, MetricFn::Cosine)).unwrap();
        let adaptive = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-5)).unwrap();
        let greedy = Laca::new(
            &ds.graph,
            Some(&tnam),
            LacaParams::new(1e-5).with_backend(DiffusionBackend::Greedy),
        )
        .unwrap();
        let (_, sa) = adaptive.bdd_with_stats(2).unwrap();
        let (_, sg) = greedy.bdd_with_stats(2).unwrap();
        assert!(sa.rwr.iterations <= sg.rwr.iterations);
    }

    #[test]
    fn shared_engine_matches_borrowed_engine_across_threads() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(16, MetricFn::Cosine)).unwrap();
        let params = LacaParams::new(1e-4);
        let borrowed = Laca::new(&ds.graph, Some(&tnam), params.clone()).unwrap();
        let shared =
            Laca::new_shared(Arc::new(ds.graph.clone()), Some(Arc::new(tnam.clone())), params)
                .unwrap();
        let expected: Vec<_> = (0..4u32)
            .map(|s| {
                let (rho, stats) = borrowed.bdd_with_stats(s).unwrap();
                (rho.to_sorted_pairs(), stats.bdd.push_operations)
            })
            .collect();
        let handles: Vec<_> = (0..4u32)
            .map(|s| {
                let engine = shared.clone();
                std::thread::spawn(move || {
                    let (rho, stats) = engine.bdd_with_stats(s).unwrap();
                    (rho.to_sorted_pairs(), stats.bdd.push_operations)
                })
            })
            .collect();
        for (s, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), expected[s], "seed {s} diverged across threads");
        }
    }

    #[test]
    fn shared_construction_validates_like_borrowed() {
        let ds = dataset();
        let graph = Arc::new(ds.graph.clone());
        assert!(Laca::new_shared(Arc::clone(&graph), None, LacaParams::new(1e-4)).is_err());
        assert!(Laca::new_shared(graph, None, LacaParams::new(1e-4).without_snas()).is_ok());
    }

    #[test]
    fn rejects_inconsistent_construction() {
        let ds = dataset();
        // use_snas without a TNAM.
        assert!(Laca::new(&ds.graph, None, LacaParams::new(1e-4)).is_err());
        // Seed out of range.
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(8, MetricFn::Cosine)).unwrap();
        let engine = Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-4)).unwrap();
        assert!(engine.bdd(10_000).is_err());
    }

    /// Sorted `(node, bit-pattern)` pairs: equality here is bit-identity.
    fn rho_bits(v: &laca_diffusion::SparseVec) -> Vec<(NodeId, u64)> {
        let mut p: Vec<(NodeId, u64)> = v.iter().map(|(i, x)| (i, x.to_bits())).collect();
        p.sort_unstable();
        p
    }

    #[test]
    fn batched_bdd_is_bit_identical_to_serial() {
        let ds = dataset();
        let tnam = Tnam::build(&ds.attributes, &TnamConfig::new(16, MetricFn::Cosine)).unwrap();
        // 20 seeds > MAX_LANES exercises the chunking path; the repeat
        // covers duplicate seeds in one batch.
        let seeds: Vec<NodeId> = (0..19).chain(std::iter::once(3)).collect();
        for backend in
            [DiffusionBackend::Adaptive, DiffusionBackend::Greedy, DiffusionBackend::NonGreedy]
        {
            let engine =
                Laca::new(&ds.graph, Some(&tnam), LacaParams::new(1e-4).with_backend(backend))
                    .unwrap();
            let mut bws = laca_diffusion::BatchWorkspace::new();
            let batch = engine.bdd_batch_with_stats_in(&seeds, &mut bws);
            assert_eq!(batch.len(), seeds.len());
            let mut sws = laca_diffusion::DiffusionWorkspace::new();
            for (&seed, got) in seeds.iter().zip(&batch) {
                let (rho, stats) = engine.bdd_with_stats_in(seed, &mut sws).unwrap();
                let (brho, bstats) = got.as_ref().unwrap();
                assert_eq!(bstats, &stats, "seed {seed} stats diverged ({backend:?})");
                assert_eq!(rho_bits(brho), rho_bits(&rho), "seed {seed} rho bits ({backend:?})");
            }
        }
    }

    #[test]
    fn batched_bdd_without_snas_matches_serial() {
        let ds = dataset();
        let engine = Laca::new(&ds.graph, None, LacaParams::new(1e-4).without_snas()).unwrap();
        let seeds: Vec<NodeId> = (0..8).collect();
        let mut bws = laca_diffusion::BatchWorkspace::new();
        let batch = engine.bdd_batch_with_stats_in(&seeds, &mut bws);
        let mut sws = laca_diffusion::DiffusionWorkspace::new();
        for (&seed, got) in seeds.iter().zip(&batch) {
            let (rho, stats) = engine.bdd_with_stats_in(seed, &mut sws).unwrap();
            let (brho, bstats) = got.as_ref().unwrap();
            assert_eq!(bstats, &stats, "seed {seed} stats diverged");
            assert_eq!(rho_bits(brho), rho_bits(&rho), "seed {seed} rho bits");
        }
    }

    #[test]
    fn batched_bdd_fails_bad_seeds_per_lane() {
        let ds = dataset();
        let engine = Laca::new(&ds.graph, None, LacaParams::new(1e-4).without_snas()).unwrap();
        let seeds = [1, 10_000, 2];
        let out = engine.bdd_batch(&seeds);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(CoreError::BadParameter(_))));
        assert!(out[2].is_ok());
        // The good lanes still match their serial answers.
        assert_eq!(rho_bits(out[0].as_ref().unwrap()), rho_bits(&engine.bdd(1).unwrap()));
        assert_eq!(rho_bits(out[2].as_ref().unwrap()), rho_bits(&engine.bdd(2).unwrap()));
    }
}
